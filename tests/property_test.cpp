// Property-based sweeps (parameterized gtest): invariants that must hold
// across whole families of inputs rather than hand-picked cases.

#include <gtest/gtest.h>

#include "core/link_connected.h"
#include "core/obstructions.h"
#include "solver/map_search.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/chromatic.h"
#include "topology/compiled.h"
#include "topology/graph.h"
#include "topology/homology.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

// ---------------------------------------------------------------------------
// Subdivision properties over the radius.
// ---------------------------------------------------------------------------

class SubdivisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubdivisionProperty, DiskInvariants) {
  const int rounds = GetParam();
  VertexPool pool;
  SimplicialComplex base;
  base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
  const SubdividedComplex sub = chromatic_subdivision(pool, base, rounds);
  // Facet count 13^r; still a disk (χ = 1); pure, chromatic, colors 0..2.
  std::size_t expected = 1;
  for (int i = 0; i < rounds; ++i) expected *= 13;
  EXPECT_EQ(sub.complex.count(2), expected);
  EXPECT_EQ(sub.complex.euler_characteristic(), 1);
  EXPECT_TRUE(sub.complex.is_pure());
  EXPECT_TRUE(is_chromatic_complex(pool, sub.complex));
  EXPECT_TRUE(is_properly_colored(pool, sub.complex, 3));
  EXPECT_TRUE(is_connected(sub.complex));
  // Interior links are connected (subdivisions of disks are link-connected
  // at interior vertices); corner links may be smaller but never empty.
  for (VertexId v : sub.complex.vertex_ids()) {
    EXPECT_FALSE(sub.complex.link(v).empty());
    EXPECT_TRUE(is_connected(sub.complex.link(v)));
  }
  // Carriers are faces of the base facet and contain the vertex's color.
  const Simplex sigma = base.facets().front();
  for (VertexId v : sub.complex.vertex_ids()) {
    EXPECT_TRUE(sigma.contains_all(sub.carrier.at(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, SubdivisionProperty, ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Homology consistency: χ = b0 - b1 + b2 on assorted complexes.
// ---------------------------------------------------------------------------

class EulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EulerProperty, EulerPoincare) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task t = zoo::random_task(params);
  const BettiNumbers b = betti_numbers(t.output);
  EXPECT_EQ(t.output.euler_characteristic(), b.b0 - b.b1 + b.b2);
  EXPECT_EQ(static_cast<std::size_t>(b.b0), component_count(t.output));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Random-task pipeline invariants.
// ---------------------------------------------------------------------------

class RandomTaskProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTaskProperty, PipelineInvariants) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task t = zoo::random_task(params);
  ASSERT_TRUE(t.validate().empty());

  // Canonicalization: valid, canonical, same input complex, and the output
  // facet count is the sum over input facets of their image counts.
  const Task star = canonicalize(t);
  EXPECT_TRUE(star.validate().empty());
  EXPECT_TRUE(star.is_canonical());
  EXPECT_TRUE(star.input == t.input);
  std::size_t image_facets = 0;
  for (const Simplex& sigma : t.input.simplices(2)) {
    image_facets += t.delta.facet_images(sigma).size();
  }
  EXPECT_EQ(star.output.count(2), image_facets);

  // Splitting: terminates, link-connected, canonical, LAP count reaches 0,
  // and all intermediate structure stays valid (modulo the documented
  // solo-level monotonicity relaxation).
  const LinkConnectedResult lc = make_link_connected(star);
  EXPECT_TRUE(lc.task.is_link_connected());
  EXPECT_TRUE(lc.task.is_canonical());
  EXPECT_TRUE(find_all_laps(lc.task).empty());
  EXPECT_TRUE(lc.task.validate(/*relax_vertex_monotonicity=*/true).empty());

  // Components never decrease under splitting.
  EXPECT_GE(component_count(lc.task.output), component_count(star.output));
}

TEST_P(RandomTaskProperty, SplitStepInvariants) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 3);
  Task t = canonicalize(zoo::random_task(params));
  // Per-facet LAP counts are non-increasing for the facet being split.
  int guard = 0;
  while (guard++ < 200) {
    const auto laps = find_all_laps(t);
    if (laps.empty()) break;
    const LapRecord& lap = laps.front();
    const std::size_t before = find_laps(t, lap.facet).size();
    const SplitResult split = split_lap(t, lap);
    const std::size_t after = find_laps(split.task, lap.facet).size();
    EXPECT_LT(after, before);
    // Copies carry the LAP's color; the original vertex is gone.
    for (VertexId copy : split.copies) {
      EXPECT_EQ(t.pool->color(copy), t.pool->color(lap.vertex));
    }
    EXPECT_FALSE(split.task.output.contains_vertex(lap.vertex));
    t = split.task;
  }
  EXPECT_TRUE(find_all_laps(t).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaskProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

// ---------------------------------------------------------------------------
// Obstruction soundness on random tasks: the connectivity CSP may never
// reject a task for which a chromatic decision map exists.
// ---------------------------------------------------------------------------

class ObstructionSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObstructionSoundness, CspNeverRejectsSolvable) {
  zoo::RandomTaskParams params;
  params.seed = GetParam() + 1000;
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task t = zoo::random_task(params);
  const ConnectivityCsp csp = connectivity_csp(t);
  if (!csp.feasible) {
    // Then no decision map may exist at any radius; check r <= 1.
    for (int r = 0; r <= 1; ++r) {
      const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, r);
      MapSearchOptions options;
      EXPECT_FALSE(find_decision_map(*t.pool, domain, t, options).found)
          << t.name << " radius " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObstructionSoundness,
                         ::testing::Range<std::uint64_t>(0, 10));


// ---------------------------------------------------------------------------
// Compiled-substrate equivalence: a compile()-ed snapshot must answer every
// structural query exactly as the hash-set SimplicialComplex it was frozen
// from — links, stars, facets, membership, component counts — for every
// complex the solver actually touches (zoo inputs/outputs, Δ images, random
// tasks, and their chromatic subdivisions at radii 0..2).
// ---------------------------------------------------------------------------

void expect_compiled_equivalent(const SimplicialComplex& k,
                                const std::string& what) {
  const auto c = CompiledComplex::compile(k);

  // Global shape.
  ASSERT_EQ(c->num_vertices(), k.count(0)) << what;
  EXPECT_EQ(c->dimension(), k.dimension()) << what;
  EXPECT_EQ(c->total_count(), k.total_count()) << what;
  for (int d = 0; d <= k.dimension(); ++d) {
    EXPECT_EQ(c->count(d), k.count(d)) << what << " dim " << d;
  }
  EXPECT_EQ(c->facets(), k.facets()) << what;
  EXPECT_EQ(c->component_count(), component_count(k)) << what;

  // Locals enumerate the vertices in the deterministic sorted order.
  const std::vector<VertexId> ids = k.vertex_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto v = static_cast<CompiledComplex::Local>(i);
    ASSERT_EQ(c->vertex(v), ids[i]) << what;

    // Link structure: emptiness, component count, and the exact component
    // partition in connected_components' format.
    const SimplicialComplex link = k.link(ids[i]);
    EXPECT_EQ(c->link_empty(v), link.empty()) << what;
    const auto components = connected_components(link);
    EXPECT_EQ(c->link_component_count(v), components.size()) << what;
    EXPECT_EQ(c->link_components(v), components) << what;
    EXPECT_EQ(c->link_connected(v), !link.empty() && components.size() == 1)
        << what;

    // Star counts per dimension against the hash-set closed star. The
    // closed star also includes faces *not* containing v, so count via a
    // direct filter instead.
    const SimplicialComplex star = k.star(ids[i]);
    for (int d = 0; d <= k.dimension(); ++d) {
      std::size_t expected = 0;
      for (const Simplex& s : star.simplices(d)) {
        if (s.contains(ids[i])) ++expected;
      }
      EXPECT_EQ(c->star_count(v, d), expected) << what << " dim " << d;
    }
  }

  // Exact membership on every stored simplex.
  k.for_each([&](const Simplex& s) {
    EXPECT_TRUE(c->contains(s)) << what << " size " << s.size();
  });

#ifndef NDEBUG
  c->debug_verify_against(k);
#endif
}

class CompiledCatalogEquivalence
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompiledCatalogEquivalence, MatchesHashSetForm) {
  const zoo::CatalogEntry& entry = zoo::catalog()[GetParam()];
  const Task t = entry.build();
  expect_compiled_equivalent(t.input, std::string(entry.name) + ".input");
  expect_compiled_equivalent(t.output, std::string(entry.name) + ".output");
  // Δ images of the facets: the complexes the LAP/link-connectivity scans
  // actually compile.
  for (const Simplex& sigma : t.input.simplices(t.input.dimension())) {
    expect_compiled_equivalent(t.delta.image_complex(sigma),
                               std::string(entry.name) + ".image");
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, CompiledCatalogEquivalence,
                         ::testing::Range<std::size_t>(0, 21));

TEST(CompiledCatalogEquivalence, CatalogHasTheExpectedSize) {
  // Keep the Range above in sync with the catalog.
  EXPECT_EQ(zoo::catalog().size(), 21u);
}

class CompiledSubdivisionEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledSubdivisionEquivalence, MatchesAcrossRadii) {
  zoo::RandomTaskParams params;
  params.seed = GetParam() + 2000;
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 3);
  const Task t = zoo::random_task(params);
  for (int r = 0; r <= 2; ++r) {
    const SubdividedComplex sub = chromatic_subdivision(*t.pool, t.input, r);
    // The snapshot cached by the subdivision itself must match too (it is
    // built by streaming facets through the Builder, not by compile()).
    ASSERT_NE(sub.compiled, nullptr);
    EXPECT_EQ(sub.compiled->total_count(), sub.complex.total_count());
    EXPECT_EQ(sub.compiled->facets(), sub.complex.facets());
    expect_compiled_equivalent(sub.complex,
                               t.name + ".Ch^" + std::to_string(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledSubdivisionEquivalence,
                         ::testing::Range<std::uint64_t>(0, 6));

// ---------------------------------------------------------------------------
// Splitting-order independence: Theorem 4.3 fixes no elimination order; the
// resulting component structure and obstruction verdicts must not depend on
// it.
// ---------------------------------------------------------------------------

class SplitOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitOrderProperty, OrderIndependentOutcome) {
  zoo::RandomTaskParams params;
  params.seed = GetParam() + 500;
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 3);
  const Task base = canonicalize(zoo::random_task(params));

  auto run = [&](bool reverse) {
    Task t = base;
    int guard = 0;
    while (guard++ < 300) {
      auto laps = find_all_laps(t);
      if (laps.empty()) break;
      t = split_lap(t, reverse ? laps.back() : laps.front()).task;
    }
    return t;
  };
  const Task forward = run(false);
  const Task backward = run(true);
  EXPECT_TRUE(forward.is_link_connected());
  EXPECT_TRUE(backward.is_link_connected());
  EXPECT_EQ(component_count(forward.output), component_count(backward.output));
  EXPECT_EQ(forward.output.count(2), backward.output.count(2));
  EXPECT_EQ(connectivity_csp(forward).feasible, connectivity_csp(backward).feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitOrderProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace trichroma
