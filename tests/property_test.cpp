// Property-based sweeps (parameterized gtest): invariants that must hold
// across whole families of inputs rather than hand-picked cases.

#include <gtest/gtest.h>

#include "core/link_connected.h"
#include "core/obstructions.h"
#include "solver/map_search.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/chromatic.h"
#include "topology/graph.h"
#include "topology/homology.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

// ---------------------------------------------------------------------------
// Subdivision properties over the radius.
// ---------------------------------------------------------------------------

class SubdivisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubdivisionProperty, DiskInvariants) {
  const int rounds = GetParam();
  VertexPool pool;
  SimplicialComplex base;
  base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
  const SubdividedComplex sub = chromatic_subdivision(pool, base, rounds);
  // Facet count 13^r; still a disk (χ = 1); pure, chromatic, colors 0..2.
  std::size_t expected = 1;
  for (int i = 0; i < rounds; ++i) expected *= 13;
  EXPECT_EQ(sub.complex.count(2), expected);
  EXPECT_EQ(sub.complex.euler_characteristic(), 1);
  EXPECT_TRUE(sub.complex.is_pure());
  EXPECT_TRUE(is_chromatic_complex(pool, sub.complex));
  EXPECT_TRUE(is_properly_colored(pool, sub.complex, 3));
  EXPECT_TRUE(is_connected(sub.complex));
  // Interior links are connected (subdivisions of disks are link-connected
  // at interior vertices); corner links may be smaller but never empty.
  for (VertexId v : sub.complex.vertex_ids()) {
    EXPECT_FALSE(sub.complex.link(v).empty());
    EXPECT_TRUE(is_connected(sub.complex.link(v)));
  }
  // Carriers are faces of the base facet and contain the vertex's color.
  const Simplex sigma = base.facets().front();
  for (VertexId v : sub.complex.vertex_ids()) {
    EXPECT_TRUE(sigma.contains_all(sub.carrier.at(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, SubdivisionProperty, ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Homology consistency: χ = b0 - b1 + b2 on assorted complexes.
// ---------------------------------------------------------------------------

class EulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EulerProperty, EulerPoincare) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task t = zoo::random_task(params);
  const BettiNumbers b = betti_numbers(t.output);
  EXPECT_EQ(t.output.euler_characteristic(), b.b0 - b.b1 + b.b2);
  EXPECT_EQ(static_cast<std::size_t>(b.b0), component_count(t.output));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Random-task pipeline invariants.
// ---------------------------------------------------------------------------

class RandomTaskProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTaskProperty, PipelineInvariants) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task t = zoo::random_task(params);
  ASSERT_TRUE(t.validate().empty());

  // Canonicalization: valid, canonical, same input complex, and the output
  // facet count is the sum over input facets of their image counts.
  const Task star = canonicalize(t);
  EXPECT_TRUE(star.validate().empty());
  EXPECT_TRUE(star.is_canonical());
  EXPECT_TRUE(star.input == t.input);
  std::size_t image_facets = 0;
  for (const Simplex& sigma : t.input.simplices(2)) {
    image_facets += t.delta.facet_images(sigma).size();
  }
  EXPECT_EQ(star.output.count(2), image_facets);

  // Splitting: terminates, link-connected, canonical, LAP count reaches 0,
  // and all intermediate structure stays valid (modulo the documented
  // solo-level monotonicity relaxation).
  const LinkConnectedResult lc = make_link_connected(star);
  EXPECT_TRUE(lc.task.is_link_connected());
  EXPECT_TRUE(lc.task.is_canonical());
  EXPECT_TRUE(find_all_laps(lc.task).empty());
  EXPECT_TRUE(lc.task.validate(/*relax_vertex_monotonicity=*/true).empty());

  // Components never decrease under splitting.
  EXPECT_GE(component_count(lc.task.output), component_count(star.output));
}

TEST_P(RandomTaskProperty, SplitStepInvariants) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 3);
  Task t = canonicalize(zoo::random_task(params));
  // Per-facet LAP counts are non-increasing for the facet being split.
  int guard = 0;
  while (guard++ < 200) {
    const auto laps = find_all_laps(t);
    if (laps.empty()) break;
    const LapRecord& lap = laps.front();
    const std::size_t before = find_laps(t, lap.facet).size();
    const SplitResult split = split_lap(t, lap);
    const std::size_t after = find_laps(split.task, lap.facet).size();
    EXPECT_LT(after, before);
    // Copies carry the LAP's color; the original vertex is gone.
    for (VertexId copy : split.copies) {
      EXPECT_EQ(t.pool->color(copy), t.pool->color(lap.vertex));
    }
    EXPECT_FALSE(split.task.output.contains_vertex(lap.vertex));
    t = split.task;
  }
  EXPECT_TRUE(find_all_laps(t).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaskProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

// ---------------------------------------------------------------------------
// Obstruction soundness on random tasks: the connectivity CSP may never
// reject a task for which a chromatic decision map exists.
// ---------------------------------------------------------------------------

class ObstructionSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObstructionSoundness, CspNeverRejectsSolvable) {
  zoo::RandomTaskParams params;
  params.seed = GetParam() + 1000;
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task t = zoo::random_task(params);
  const ConnectivityCsp csp = connectivity_csp(t);
  if (!csp.feasible) {
    // Then no decision map may exist at any radius; check r <= 1.
    for (int r = 0; r <= 1; ++r) {
      const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, r);
      MapSearchOptions options;
      EXPECT_FALSE(find_decision_map(*t.pool, domain, t, options).found)
          << t.name << " radius " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObstructionSoundness,
                         ::testing::Range<std::uint64_t>(0, 10));


// ---------------------------------------------------------------------------
// Splitting-order independence: Theorem 4.3 fixes no elimination order; the
// resulting component structure and obstruction verdicts must not depend on
// it.
// ---------------------------------------------------------------------------

class SplitOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitOrderProperty, OrderIndependentOutcome) {
  zoo::RandomTaskParams params;
  params.seed = GetParam() + 500;
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 3);
  const Task base = canonicalize(zoo::random_task(params));

  auto run = [&](bool reverse) {
    Task t = base;
    int guard = 0;
    while (guard++ < 300) {
      auto laps = find_all_laps(t);
      if (laps.empty()) break;
      t = split_lap(t, reverse ? laps.back() : laps.front()).task;
    }
    return t;
  };
  const Task forward = run(false);
  const Task backward = run(true);
  EXPECT_TRUE(forward.is_link_connected());
  EXPECT_TRUE(backward.is_link_connected());
  EXPECT_EQ(component_count(forward.output), component_count(backward.output));
  EXPECT_EQ(forward.output.count(2), backward.output.count(2));
  EXPECT_EQ(connectivity_csp(forward).feasible, connectivity_csp(backward).feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitOrderProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace trichroma
