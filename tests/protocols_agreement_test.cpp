// Tests for the Figure-7 chromatic agreement algorithm (Lemma 5.3) and the
// end-to-end Theorem 5.1 pipeline: color-agnostic solution + chromatic
// completion, executed on the shared-memory simulator, decisions checked
// against Δ.

#include <gtest/gtest.h>

#include "protocols/chromatic_agreement.h"
#include "protocols/pipeline.h"
#include "protocols/verify.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

using protocols::AgreementOutcome;
using protocols::ColorlessAlgorithm;
using protocols::build_end_to_end;
using protocols::outcomes_valid;
using protocols::run_agreement;
using protocols::run_end_to_end;
using protocols::synthesize_colorless;

/// Runs the Figure-7 algorithm on `task` (must be link-connected) for every
/// participant subset of the given input facet, across many random
/// schedules, asserting chromatic Δ-valid outcomes each time.
void exercise_agreement(const Task& task, const Simplex& facet, int max_radius,
                        int seeds) {
  const auto algorithm = synthesize_colorless(task, max_radius);
  ASSERT_TRUE(algorithm.has_value()) << task.name;
  for (unsigned mask = 1; mask < 8; ++mask) {
    std::vector<std::pair<int, VertexId>> inputs;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1u << i)) {
        inputs.emplace_back(i, facet[static_cast<std::size_t>(i)]);
      }
    }
    for (int seed = 0; seed < seeds; ++seed) {
      const auto outcomes =
          run_agreement(task, *algorithm, inputs, static_cast<std::uint64_t>(seed));
      EXPECT_TRUE(outcomes_valid(task, inputs, outcomes))
          << task.name << " mask=" << mask << " seed=" << seed;
    }
  }
}

TEST(Agreement, SubdivisionTaskAllParticipantSets) {
  const Task t = zoo::subdivision_task(1);
  exercise_agreement(t, t.input.facets().front(), 1, 40);
}

TEST(Agreement, IdentityTask) {
  const Task t = zoo::identity_task();
  exercise_agreement(t, t.input.facets().front(), 1, 20);
}

TEST(Agreement, RenamingTask) {
  const Task t = zoo::renaming(5);
  exercise_agreement(t, t.input.facets().front(), 1, 30);
}

TEST(Agreement, PivotAlwaysExists) {
  // Claim 2: at least one process is a pivot in every full execution.
  const Task t = zoo::subdivision_task(1);
  const auto algorithm = synthesize_colorless(t, 1);
  ASSERT_TRUE(algorithm.has_value());
  const Simplex facet = t.input.facets().front();
  std::vector<std::pair<int, VertexId>> inputs{
      {0, facet[0]}, {1, facet[1]}, {2, facet[2]}};
  for (int seed = 0; seed < 50; ++seed) {
    const auto outcomes =
        run_agreement(t, *algorithm, inputs, static_cast<std::uint64_t>(seed));
    int pivots = 0;
    for (const auto& o : outcomes) pivots += o.pivot ? 1 : 0;
    EXPECT_GE(pivots, 1) << "seed " << seed;
  }
}

TEST(Agreement, SoloExecutionDecidesImmediately) {
  const Task t = zoo::subdivision_task(1);
  const auto algorithm = synthesize_colorless(t, 1);
  ASSERT_TRUE(algorithm.has_value());
  const Simplex facet = t.input.facets().front();
  const std::vector<std::pair<int, VertexId>> inputs{{1, facet[1]}};
  const auto outcomes = run_agreement(t, *algorithm, inputs, 7);
  ASSERT_TRUE(outcomes[0].decision.has_value());
  EXPECT_TRUE(t.delta.allows(Simplex::single(facet[1]),
                             Simplex::single(*outcomes[0].decision)));
}

TEST(EndToEnd, SubdivisionTaskViaCharacterization) {
  // Full Theorem 5.1 loop on a solvable task: canonicalize, split (no-op),
  // synthesize colorless on T', run Figure-7, translate back, check Δ.
  const Task t = zoo::subdivision_task(1);
  const auto solver = build_end_to_end(t, 1);
  ASSERT_TRUE(solver.has_value());
  const Simplex facet = t.input.facets().front();
  for (unsigned mask = 1; mask < 8; ++mask) {
    std::vector<std::pair<int, VertexId>> inputs;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1u << i)) inputs.emplace_back(i, facet[static_cast<std::size_t>(i)]);
    }
    for (int seed = 0; seed < 10; ++seed) {
      const auto run =
          run_end_to_end(*solver, t, inputs, static_cast<std::uint64_t>(seed));
      EXPECT_TRUE(run.valid) << "mask=" << mask << " seed=" << seed;
    }
  }
}

TEST(EndToEnd, ApproximateAgreementMultiInput) {
  const Task t = zoo::approximate_agreement(2);
  const auto solver = build_end_to_end(t, 2);
  ASSERT_TRUE(solver.has_value());
  // Exercise several input facets of the multi-facet input complex.
  int checked = 0;
  for (const Simplex& facet : t.input.simplices(2)) {
    if (++checked > 4) break;
    std::vector<std::pair<int, VertexId>> inputs;
    for (int i = 0; i < 3; ++i) inputs.emplace_back(i, facet[static_cast<std::size_t>(i)]);
    for (int seed = 0; seed < 5; ++seed) {
      const auto run =
          run_end_to_end(*solver, t, inputs, static_cast<std::uint64_t>(seed));
      EXPECT_TRUE(run.valid) << facet.to_string(*t.pool) << " seed=" << seed;
    }
  }
}

TEST(EndToEnd, UnsolvableTasksYieldNoSolver) {
  // For unsolvable tasks the color-agnostic synthesis on T' must fail
  // (Theorem 5.1's possibility direction finds nothing at any radius our
  // budget covers).
  EXPECT_FALSE(build_end_to_end(zoo::hourglass(), 2).has_value());
  EXPECT_FALSE(build_end_to_end(zoo::consensus(3), 1).has_value());
}

TEST(Agreement, LockstepNegotiationConverges) {
  // Adversarial lockstep: P0 runs to completion first (it becomes the pivot
  // with core {center}), then P1 and P2 alternate single steps. With spread
  // anchors on a long fan link, both non-pivots enter the jumping loop
  // concurrently; each round must shrink the gap by two (the paper's
  // "inside the sub-path" invariant). A jump oriented toward the original
  // anchor instead oscillates forever — this is the regression test for
  // that bug.
  const Task t = zoo::fan_task(16);
  const auto algorithm = synthesize_colorless(t, 2);
  ASSERT_TRUE(algorithm.has_value());
  const Simplex facet = t.input.facets().front();

  protocols::AgreementShared shared(3, algorithm->rounds);
  std::vector<AgreementOutcome> outcomes(3);
  std::vector<runtime::ProcessBody> procs;
  for (int i = 0; i < 3; ++i) {
    procs.push_back(protocols::agreement_process(
        shared, t, *algorithm, i, facet[static_cast<std::size_t>(i)],
        outcomes[static_cast<std::size_t>(i)], /*pick_largest=*/i == 1));
  }
  runtime::Executor ex(std::move(procs));
  while (!ex.done(0)) ex.step(runtime::Block{0});
  std::size_t guard = 0;
  while (!ex.all_done()) {
    ASSERT_LT(guard++, 10000u) << "negotiation diverged (lockstep oscillation)";
    if (!ex.done(1)) ex.step(runtime::Block{1});
    if (!ex.done(2)) ex.step(runtime::Block{2});
  }
  std::vector<std::pair<int, VertexId>> inputs{
      {0, facet[0]}, {1, facet[1]}, {2, facet[2]}};
  EXPECT_TRUE(outcomes_valid(t, inputs, outcomes));
  EXPECT_TRUE(outcomes[0].pivot);
  // Both non-pivots genuinely negotiated across the long link.
  EXPECT_GE(outcomes[1].jumps + outcomes[2].jumps, 4u);
}

TEST(Agreement, StepCountTracksLinkLength) {
  // The paper: termination time is proportional to the longest link. The
  // negotiation loop's jump count is bounded by the link diameter.
  const Task t = zoo::subdivision_task(1);
  const auto algorithm = synthesize_colorless(t, 1);
  ASSERT_TRUE(algorithm.has_value());
  const Simplex facet = t.input.facets().front();
  std::vector<std::pair<int, VertexId>> inputs{
      {0, facet[0]}, {1, facet[1]}, {2, facet[2]}};
  for (int seed = 0; seed < 40; ++seed) {
    const auto outcomes =
        run_agreement(t, *algorithm, inputs, static_cast<std::uint64_t>(seed));
    for (const auto& o : outcomes) {
      // Links in Ch¹(σ) have at most 6 vertices; jumps are bounded by the
      // path length.
      EXPECT_LE(o.jumps, 8u);
    }
  }
}


TEST(Verify, ExhaustiveVerificationOfSolverWitnesses) {
  // Every Solvable verdict's witness must survive model checking against
  // all IIS executions of all participant subsets.
  for (const Task& t : {zoo::subdivision_task(1), zoo::identity_task(),
                        zoo::renaming(4), zoo::weak_symmetry_breaking(3)}) {
    const SolvabilityResult r = decide_solvability(t);
    ASSERT_EQ(r.verdict, Verdict::Solvable) << t.name;
    ASSERT_TRUE(r.has_chromatic_witness) << t.name;
    const auto v = protocols::verify_decision_map(t, r.witness, r.radius);
    EXPECT_TRUE(v.ok) << t.name << ": " << v.first_failure;
    EXPECT_GT(v.executions, 0u);
  }
}

TEST(Verify, CatchesABrokenMap) {
  // Corrupt a valid witness: swap one decision to a wrong-color vertex.
  const Task t = zoo::subdivision_task(1);
  const SolvabilityResult r = decide_solvability(t);
  ASSERT_TRUE(r.has_chromatic_witness);
  VertexMap broken = r.witness;
  const auto& entries = r.witness.entries();
  ASSERT_FALSE(entries.empty());
  // Map the first domain vertex to a same-color but Delta-violating vertex
  // if possible; otherwise to an arbitrary other output vertex.
  const VertexId victim = entries.begin()->first;
  for (VertexId w : t.output.vertex_ids()) {
    if (w != entries.begin()->second) {
      broken.set(victim, w);
      break;
    }
  }
  const auto v = protocols::verify_decision_map(t, broken, r.radius);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.first_failure.empty());
}

}  // namespace
}  // namespace trichroma
