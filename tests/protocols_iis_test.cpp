// Tests for the IIS protocol: the operational side of the standard
// chromatic subdivision. The key cross-validation: the set of view profiles
// over all schedules equals the facet set of Ch^r(I) built combinatorially.

#include <gtest/gtest.h>

#include <set>

#include "protocols/iis.h"
#include "solver/map_search.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

using protocols::IisOutcome;
using protocols::run_iis;

TEST(Iis, ZeroRoundsReturnsInput) {
  VertexPool pool;
  const VertexId x0 = pool.vertex(0, 100), x1 = pool.vertex(1, 101);
  const auto outcomes =
      run_iis(pool, {{0, x0}, {1, x1}}, 0, nullptr, {});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].view, x0);
  EXPECT_EQ(outcomes[1].view, x1);
}

TEST(Iis, OneRoundViewsFormChSimplices) {
  // Exhaustive: over all 13 schedules, the final views of the three
  // processes always form a facet of Ch¹(σ), and all 13 facets appear.
  VertexPool pool;
  SimplicialComplex base;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  base.add(Simplex{x0, x1, x2});
  const SubdividedComplex ch = chromatic_subdivision(pool, base, 1);

  std::set<Simplex> seen;
  for (const auto& schedule : runtime::all_iis_schedules({0, 1, 2}, 1)) {
    const auto outcomes =
        run_iis(pool, {{0, x0}, {1, x1}, {2, x2}}, 1, nullptr, schedule);
    std::vector<VertexId> views;
    for (const auto& o : outcomes) {
      ASSERT_TRUE(o.view.has_value());
      views.push_back(*o.view);
    }
    const Simplex facet{Simplex(views)};
    EXPECT_TRUE(ch.complex.contains(facet));
    seen.insert(facet);
  }
  EXPECT_EQ(seen.size(), 13u);
  EXPECT_EQ(ch.complex.count(2), 13u);  // exact correspondence
}

TEST(Iis, TwoRoundViewsFormChTwoSimplices) {
  VertexPool pool;
  SimplicialComplex base;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  base.add(Simplex{x0, x1, x2});
  const SubdividedComplex ch = chromatic_subdivision(pool, base, 2);

  std::set<Simplex> seen;
  for (const auto& schedule : runtime::all_iis_schedules({0, 1, 2}, 2)) {
    const auto outcomes =
        run_iis(pool, {{0, x0}, {1, x1}, {2, x2}}, 2, nullptr, schedule);
    std::vector<VertexId> views;
    for (const auto& o : outcomes) views.push_back(*o.view);
    const Simplex facet{Simplex(views)};
    EXPECT_TRUE(ch.complex.contains(facet));
    seen.insert(facet);
  }
  EXPECT_EQ(seen.size(), 169u);
}

TEST(Iis, PartialParticipationLandsInSubdividedFace) {
  // Only P0 and P2 run: views lie in Ch of the {x0, x2} edge.
  VertexPool pool;
  SimplicialComplex base;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  base.add(Simplex{x0, x1, x2});
  const SubdividedComplex ch = chromatic_subdivision(pool, base, 1);

  for (const auto& schedule : runtime::all_iis_schedules({0, 2}, 1)) {
    const auto outcomes = run_iis(pool, {{0, x0}, {2, x2}}, 1, nullptr, schedule);
    const Simplex edge{*outcomes[0].view, *outcomes[1].view};
    EXPECT_TRUE(ch.complex.contains(edge));
    EXPECT_TRUE((Simplex{x0, x2}).contains_all(ch.carrier_of(edge)));
  }
}

TEST(Iis, DecisionMapExecutesWitness) {
  // Solve the 1-round subdivision task with the solver, then execute the
  // witness on the simulator: outputs must always satisfy Δ.
  const Task t = zoo::subdivision_task(1);
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 1);
  MapSearchOptions options;
  const MapSearchResult found = find_decision_map(*t.pool, domain, t, options);
  ASSERT_TRUE(found.found);

  const Simplex sigma = t.input.facets().front();
  for (const auto& schedule : runtime::all_iis_schedules({0, 1, 2}, 1)) {
    const auto outcomes =
        run_iis(*t.pool, {{0, sigma[0]}, {1, sigma[1]}, {2, sigma[2]}}, 1,
                &found.map, schedule);
    std::vector<VertexId> decisions;
    for (const auto& o : outcomes) {
      ASSERT_TRUE(o.decision.has_value());
      decisions.push_back(*o.decision);
    }
    EXPECT_TRUE(t.delta.allows(sigma, Simplex(decisions)));
  }
}

TEST(Iis, DecisionMapRespectsPartialParticipation) {
  const Task t = zoo::subdivision_task(1);
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 1);
  MapSearchOptions options;
  const MapSearchResult found = find_decision_map(*t.pool, domain, t, options);
  ASSERT_TRUE(found.found);

  const Simplex sigma = t.input.facets().front();
  const Simplex tau{sigma[0], sigma[1]};
  for (const auto& schedule : runtime::all_iis_schedules({0, 1}, 1)) {
    const auto outcomes = run_iis(
        *t.pool, {{0, sigma[0]}, {1, sigma[1]}}, 1, &found.map, schedule);
    std::vector<VertexId> decisions;
    for (const auto& o : outcomes) decisions.push_back(*o.decision);
    EXPECT_TRUE(t.delta.allows(tau, Simplex(decisions)));
  }
}

TEST(Iis, RandomSchedulesAgreeWithSubdivision) {
  VertexPool pool;
  SimplicialComplex base;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  base.add(Simplex{x0, x1, x2});
  const SubdividedComplex ch = chromatic_subdivision(pool, base, 3);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    protocols::IisShared shared(3, 3);
    std::vector<IisOutcome> outcomes(3);
    std::vector<runtime::ProcessBody> procs;
    for (int i = 0; i < 3; ++i) {
      const VertexId input = i == 0 ? x0 : (i == 1 ? x1 : x2);
      procs.push_back(
          protocols::iis_process(shared, pool, i, input, 3, nullptr, outcomes[static_cast<std::size_t>(i)]));
    }
    runtime::Executor ex(std::move(procs));
    std::mt19937_64 rng(seed);
    ex.run_random(rng);
    std::vector<VertexId> views;
    for (const auto& o : outcomes) views.push_back(*o.view);
    EXPECT_TRUE(ch.complex.contains(Simplex(views)));
  }
}

}  // namespace
}  // namespace trichroma
