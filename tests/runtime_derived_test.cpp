// Tests for the derived shared objects (the paper's §2.1 "w.l.o.g." stack,
// executable): the Afek et al. atomic snapshot from SWMR registers and the
// Borowsky–Gafni one-shot immediate snapshot from atomic snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "runtime/derived_objects.h"
#include "topology/subdivision.h"
#include "runtime/system.h"

namespace trichroma::runtime {
namespace {

// --- Afek snapshot ---------------------------------------------------------

/// Workload: each process alternates update(counter) / scan a few times;
/// every scan result is recorded. With per-process monotone counters, the
/// scans of an atomic snapshot must be totally ordered component-wise.
ProcessBody afek_worker(AfekSnapshot<int>& snap, int pid, int rounds,
                        std::vector<std::vector<std::optional<int>>>& scans) {
  for (int r = 0; r < rounds; ++r) {
    AfekSnapshot<int>::Update update(snap, pid, r + 1);
    while (!update.done()) {
      co_await Turn{OpPhase::Single};
      update.step();
    }
    AfekSnapshot<int>::Scan scan(snap);
    while (!scan.done()) {
      co_await Turn{OpPhase::Single};
      scan.step();
    }
    scans.push_back(scan.result());
  }
}

bool component_leq(const std::vector<std::optional<int>>& a,
                   const std::vector<std::optional<int>>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int x = a[i].value_or(0), y = b[i].value_or(0);
    if (x > y) return false;
  }
  return true;
}

TEST(AfekSnapshot, ScansAreTotallyOrdered) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    AfekSnapshot<int> snap(3);
    std::vector<std::vector<std::optional<int>>> scans[3];
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) {
      procs.push_back(afek_worker(snap, i, 3, scans[i]));
    }
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed);
    ex.run_random(rng, 0.0, 1'000'000);
    // Gather all scans; any two must be comparable (atomicity signature
    // for monotone per-writer values).
    std::vector<std::vector<std::optional<int>>> all;
    for (auto& s : scans) all.insert(all.end(), s.begin(), s.end());
    for (const auto& a : all) {
      for (const auto& b : all) {
        EXPECT_TRUE(component_leq(a, b) || component_leq(b, a))
            << "incomparable scans (seed " << seed << ")";
      }
    }
    // Per-scanner monotonicity: later scans dominate earlier ones.
    for (const auto& s : scans) {
      for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        EXPECT_TRUE(component_leq(s[i], s[i + 1]));
      }
    }
  }
}

TEST(AfekSnapshot, ScanSeesOwnPrecedingUpdate) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    AfekSnapshot<int> snap(3);
    std::vector<std::vector<std::optional<int>>> scans[3];
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) {
      procs.push_back(afek_worker(snap, i, 2, scans[i]));
    }
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed);
    ex.run_random(rng, 0.0, 1'000'000);
    for (int i = 0; i < 3; ++i) {
      for (std::size_t r = 0; r < scans[i].size(); ++r) {
        // After my (r+1)-th update, my own slot must show at least r+1.
        ASSERT_TRUE(scans[i][r][static_cast<std::size_t>(i)].has_value());
        EXPECT_GE(*scans[i][r][static_cast<std::size_t>(i)],
                  static_cast<int>(r) + 1);
      }
    }
  }
}

TEST(AfekSnapshot, SoloScanIsCleanDoubleCollect) {
  AfekSnapshot<int> snap(3);
  std::vector<std::vector<std::optional<int>>> scans;
  std::vector<ProcessBody> procs(3);
  procs[1] = afek_worker(snap, 1, 1, scans);
  Executor ex(std::move(procs));
  ex.run({});
  ASSERT_EQ(scans.size(), 1u);
  EXPECT_EQ(scans[0][1].value_or(0), 1);
  EXPECT_FALSE(scans[0][0].has_value());
}

// --- Borowsky–Gafni immediate snapshot --------------------------------------

ProcessBody bg_once(BgImmediateSnapshot<int>& obj, int pid,
                    std::vector<std::pair<int, int>>& view) {
  BgImmediateSnapshot<int>::WriteSnapshot op(obj, pid, pid * 10);
  while (!op.done()) {
    co_await Turn{OpPhase::Single};
    op.step();
  }
  view = op.view();
}

TEST(BgImmediateSnapshot, ViewsSatisfyIsProperties) {
  std::set<std::vector<std::vector<int>>> profiles;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    BgImmediateSnapshot<int> obj(3);
    std::vector<std::pair<int, int>> views[3];
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) procs.push_back(bg_once(obj, i, views[i]));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed);
    ex.run_random(rng, 0.0, 1'000'000);

    std::vector<std::vector<int>> pids(3);
    for (int i = 0; i < 3; ++i) {
      for (const auto& [who, value] : views[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(value, who * 10);  // values travel with their writers
        pids[static_cast<std::size_t>(i)].push_back(who);
      }
      std::sort(pids[static_cast<std::size_t>(i)].begin(),
                pids[static_cast<std::size_t>(i)].end());
      // Self-inclusion.
      EXPECT_TRUE(std::binary_search(pids[static_cast<std::size_t>(i)].begin(),
                                     pids[static_cast<std::size_t>(i)].end(), i));
    }
    // Containment (comparability) and immediacy.
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        const auto& vi = pids[static_cast<std::size_t>(i)];
        const auto& vj = pids[static_cast<std::size_t>(j)];
        EXPECT_TRUE(std::includes(vi.begin(), vi.end(), vj.begin(), vj.end()) ||
                    std::includes(vj.begin(), vj.end(), vi.begin(), vi.end()));
        if (std::binary_search(vi.begin(), vi.end(), j)) {
          EXPECT_TRUE(std::includes(vi.begin(), vi.end(), vj.begin(), vj.end()))
              << "immediacy violated (seed " << seed << ")";
        }
      }
    }
    profiles.insert(pids);
  }
  // The adversary actually explores a diversity of view profiles, and all
  // of them are among the 13 ordered-partition profiles.
  EXPECT_GE(profiles.size(), 4u);
  EXPECT_LE(profiles.size(), 13u);
}

TEST(BgImmediateSnapshot, SoloWriterSeesItself) {
  BgImmediateSnapshot<int> obj(3);
  std::vector<std::pair<int, int>> view;
  std::vector<ProcessBody> procs(3);
  procs[2] = bg_once(obj, 2, view);
  Executor ex(std::move(procs));
  ex.run({});
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].first, 2);
}

TEST(BgImmediateSnapshot, SequentialRunsGiveOrderedViews) {
  // Fully sequential: P0 then P1 then P2 — views grow by prefix.
  BgImmediateSnapshot<int> obj(3);
  std::vector<std::pair<int, int>> views[3];
  std::vector<ProcessBody> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(bg_once(obj, i, views[i]));
  Executor ex(std::move(procs));
  while (!ex.done(0)) ex.step(Block{0});
  while (!ex.done(1)) ex.step(Block{1});
  while (!ex.done(2)) ex.step(Block{2});
  EXPECT_EQ(views[0].size(), 1u);
  EXPECT_EQ(views[1].size(), 2u);
  EXPECT_EQ(views[2].size(), 3u);
}


// --- The full reduction stack ------------------------------------------------
//
// Registers -> (Afek) atomic snapshot -> (BG) immediate snapshot -> iterated
// immediate snapshot -> the standard chromatic subdivision. The paper's §2.1
// claims these reductions lose no generality; here the *implemented* stack's
// executions are checked to land exactly inside Ch^r.

/// BG write-snapshot where the underlying snapshot is itself the Afek
/// register-based implementation: every primitive step is a register access.
ProcessBody bg_over_afek_iis(std::vector<AfekSnapshot<std::pair<std::uint32_t, int>>>& rounds_objs,
                             trichroma::VertexPool& pool, int pid,
                             trichroma::VertexId input, int rounds,
                             std::optional<trichroma::VertexId>& final_view) {
  using trichroma::ValueId;
  using trichroma::VertexId;
  auto& values = pool.values();
  const ValueId view_tag = values.of_string("view");
  const trichroma::Color color = pool.color(input);
  const int n = 3;

  VertexId current = input;
  for (int r = 0; r < rounds; ++r) {
    auto& snap = rounds_objs[static_cast<std::size_t>(r)];
    // Borowsky-Gafni descent over the Afek snapshot.
    int level = n + 1;
    std::vector<std::pair<int, std::uint32_t>> view;
    while (true) {
      --level;
      AfekSnapshot<std::pair<std::uint32_t, int>>::Update update(
          snap, pid, {raw(current), level});
      while (!update.done()) {
        co_await Turn{OpPhase::Single};
        update.step();
      }
      AfekSnapshot<std::pair<std::uint32_t, int>>::Scan scan(snap);
      while (!scan.done()) {
        co_await Turn{OpPhase::Single};
        scan.step();
      }
      view.clear();
      const auto& contents = scan.result();
      for (std::size_t who = 0; who < contents.size(); ++who) {
        if (contents[who].has_value() && contents[who]->second <= level) {
          view.emplace_back(static_cast<int>(who), contents[who]->first);
        }
      }
      if (static_cast<int>(view.size()) >= level) break;
    }
    std::vector<ValueId> members;
    for (const auto& [who, value] : view) {
      (void)who;
      members.push_back(values.of_int(static_cast<std::int64_t>(value)));
    }
    current = pool.vertex(
        color, values.of_tuple({view_tag, values.of_set(std::move(members))}));
  }
  final_view = current;
}

TEST(ReductionStack, RegistersToChromaticSubdivision) {
  using trichroma::Simplex;
  using trichroma::SubdividedComplex;
  using trichroma::VertexId;
  trichroma::VertexPool pool;
  trichroma::SimplicialComplex base;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  base.add(Simplex{x0, x1, x2});
  const int rounds = 2;
  const SubdividedComplex ch = trichroma::chromatic_subdivision(pool, base, rounds);

  std::set<Simplex> seen;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    std::vector<AfekSnapshot<std::pair<std::uint32_t, int>>> objs;
    for (int r = 0; r < rounds; ++r) objs.emplace_back(3);
    std::optional<VertexId> views[3];
    std::vector<ProcessBody> procs;
    procs.push_back(bg_over_afek_iis(objs, pool, 0, x0, rounds, views[0]));
    procs.push_back(bg_over_afek_iis(objs, pool, 1, x1, rounds, views[1]));
    procs.push_back(bg_over_afek_iis(objs, pool, 2, x2, rounds, views[2]));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed);
    ex.run_random(rng, 0.0, 2'000'000);
    ASSERT_TRUE(views[0] && views[1] && views[2]);
    const Simplex facet{*views[0], *views[1], *views[2]};
    EXPECT_TRUE(ch.complex.contains(facet))
        << "register-level execution left Ch^" << rounds << " (seed " << seed
        << ")";
    seen.insert(facet);
  }
  // The adversary reaches a healthy variety of Ch^2 facets.
  EXPECT_GE(seen.size(), 10u);
}

}  // namespace
}  // namespace trichroma::runtime
