// The work-stealing executor (runtime/executor.h): stealing under
// imbalance, hierarchical cancellation, exception propagation through
// wait(), pool reuse across submissions, and the zero-worker inline path.
// The suite runs TSAN-clean (the TRICHROMA_TSAN CI job includes it).

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/executor.h"

namespace trichroma {
namespace {

TEST(Executor, ZeroWorkersRunsEverythingInlineInWait) {
  Executor executor(0);
  JobGroup group(executor);
  std::atomic<int> ran{0};
  std::thread::id waiter = std::this_thread::get_id();
  std::atomic<bool> all_on_waiter{true};
  for (int i = 0; i < 16; ++i) {
    group.submit([&] {
      if (std::this_thread::get_id() != waiter) all_on_waiter = false;
      ++ran;
    });
  }
  EXPECT_EQ(ran.load(), 0);  // nothing runs until somebody waits
  group.wait();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_TRUE(all_on_waiter.load());
}

TEST(Executor, StealingSpreadsAnImbalancedSubmissionBurst) {
  // All tasks are injected from this (non-worker) thread, then each task
  // blocks until every worker has picked one up: the burst cannot complete
  // unless at least `workers` distinct threads serve the queue.
  const int workers = 4;
  Executor executor(workers);
  std::mutex mutex;
  std::condition_variable cv;
  std::set<std::thread::id> seen;

  JobGroup group(executor);
  for (int i = 0; i < workers; ++i) {
    group.submit([&] {
      std::unique_lock<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
      cv.notify_all();
      cv.wait(lock, [&] { return seen.size() >= static_cast<std::size_t>(workers); });
    });
  }
  group.wait();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(workers));
}

TEST(Executor, NestedGroupCancellationPropagatesToChildren) {
  Executor executor(0);
  JobGroup parent(executor);
  JobGroup child(executor, &parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(parent.cancelled());
  EXPECT_TRUE(child.cancelled());
  // A child born under a cancelled parent starts cancelled, and submissions
  // to a cancelled group are dropped.
  JobGroup late(executor, &parent);
  EXPECT_TRUE(late.cancelled());
  std::atomic<int> ran{0};
  late.submit([&] { ++ran; });
  late.wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(Executor, CancelSkipsQueuedButUnstartedTasks) {
  Executor executor(0);  // inline mode: nothing starts before wait()
  JobGroup group(executor);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) group.submit([&] { ++ran; });
  group.cancel();
  group.wait();  // queued tasks complete as no-ops
  EXPECT_EQ(ran.load(), 0);
}

TEST(Executor, ExceptionPropagatesToWaitingGroupAndCancelsSiblings) {
  Executor executor(2);
  JobGroup group(executor);
  std::atomic<int> late_ran{0};
  group.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The error tripped the group token: later submissions are dropped.
  group.submit([&] { ++late_ran; });
  group.wait();  // second wait does not rethrow (reported once)
  EXPECT_EQ(late_ran.load(), 0);
  EXPECT_TRUE(group.cancelled());
}

TEST(Executor, PoolIsReusedAcrossSubmissionRounds) {
  Executor executor(2);
  const int spawned_before = executor.workers_spawned();
  for (int round = 0; round < 20; ++round) {
    JobGroup group(executor);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) group.submit([&] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 8);
  }
  // Twenty rounds, zero new threads: ensure_workers never re-spawns.
  EXPECT_EQ(executor.workers_spawned(), spawned_before);
  EXPECT_EQ(executor.workers_spawned(), 2);
}

TEST(Executor, EnsureWorkersGrowsButNeverShrinksAndClamps) {
  Executor executor(1);
  EXPECT_EQ(executor.workers_spawned(), 1);
  executor.ensure_workers(3);
  EXPECT_EQ(executor.workers_spawned(), 3);
  executor.ensure_workers(2);  // no-op
  EXPECT_EQ(executor.workers_spawned(), 3);
  executor.ensure_workers(Executor::kMaxWorkers + 100);
  EXPECT_EQ(executor.workers_spawned(), Executor::kMaxWorkers);
}

TEST(Executor, WaiterHelpsWithNestedGroupsWithoutDeadlock) {
  // A task that itself creates a child group and waits on it, on a pool of
  // one worker: progress requires help-while-waiting (the single worker is
  // inside the outer task when the inner tasks queue up).
  Executor executor(1);
  JobGroup outer(executor);
  std::atomic<int> inner_ran{0};
  outer.submit([&] {
    JobGroup inner(executor);
    for (int i = 0; i < 4; ++i) inner.submit([&] { ++inner_ran; });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_ran.load(), 4);
}

TEST(Executor, ParentWaitCoversChildGroupTasks) {
  Executor executor(2);
  std::atomic<int> ran{0};
  {
    JobGroup parent(executor);
    JobGroup child(executor, &parent);
    for (int i = 0; i < 8; ++i) child.submit([&] { ++ran; });
    parent.wait();  // no explicit child.wait(): the subtree count covers it
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ExecutorStats, CountsInjectionsAndJobsRunByPoolWorkers) {
  // Two jobs submitted from this (non-worker) thread, each held open until
  // both have been claimed: both tickets must route through the injection
  // deque and be executed by the two pool workers — this thread only calls
  // wait() after both started, so it can never help-run them inline.
  Executor executor(2);
  EXPECT_EQ(executor.stats().jobs_run, 0u);
  JobGroup group(executor);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    group.submit([&] {
      ++started;
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (started.load() < 2) std::this_thread::yield();
  release = true;
  group.wait();
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.jobs_run, 2u);
  EXPECT_EQ(stats.injections, 2u);
  EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(ExecutorStats, CountsStealsFromAnotherWorkersDeque) {
  // Worker 0 runs a job that pushes two sub-tasks onto its OWN deque and
  // then blocks until both completed. It cannot run them itself, and this
  // thread spins (never waits, so never helps): worker 1 is the only actor
  // left, and its only route to the tickets is stealing from worker 0.
  Executor executor(2);
  JobGroup group(executor);
  std::atomic<int> done{0};
  group.submit([&] {
    JobGroup inner(executor, &group);
    inner.submit([&] { ++done; });
    inner.submit([&] { ++done; });
    while (done.load() < 2) std::this_thread::yield();
    inner.wait();
  });
  while (done.load() < 2) std::this_thread::yield();
  group.wait();
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.steals, 2u);
  EXPECT_EQ(stats.jobs_run, 3u);  // the outer job + both stolen sub-tasks
  EXPECT_EQ(stats.injections, 1u);  // only the outer job came from outside
}

TEST(ExecutorStats, ResetScopesStatsBetweenBatches) {
  Executor executor(2);
  const auto run_batch = [&executor](int n) {
    JobGroup group(executor);
    std::atomic<int> started{0};
    std::atomic<bool> release{false};
    for (int i = 0; i < n; ++i) {
      group.submit([&] {
        ++started;
        while (!release.load()) std::this_thread::yield();
      });
    }
    while (started.load() < n) std::this_thread::yield();
    release = true;
    group.wait();
  };
  run_batch(2);
  EXPECT_EQ(executor.stats().jobs_run, 2u);
  executor.reset_stats();
  const ExecutorStats zeroed = executor.stats();
  EXPECT_EQ(zeroed.jobs_run, 0u);
  EXPECT_EQ(zeroed.steals, 0u);
  EXPECT_EQ(zeroed.injections, 0u);
  EXPECT_EQ(zeroed.max_queue_depth, 0u);
  // The next batch is counted from zero, not on top of the first.
  run_batch(2);
  EXPECT_EQ(executor.stats().jobs_run, 2u);
  EXPECT_EQ(executor.stats().injections, 2u);
}

TEST(ExecutorStats, ZeroWorkerInlineExecutionCountsNothing) {
  // Inline wait() execution never routes through tickets: drops at post,
  // runs via the group queue — the scheduling telemetry stays silent.
  Executor executor(0);
  JobGroup group(executor);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) group.submit([&] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 4);
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.jobs_run, 0u);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.injections, 0u);
  EXPECT_EQ(stats.max_queue_depth, 0u);
}

TEST(Executor, CurrentWorkerIndexIdentifiesPoolThreads) {
  Executor executor(2);
  EXPECT_EQ(executor.current_worker_index(), -1);  // not a pool thread
  JobGroup group(executor);
  std::mutex mutex;
  std::set<int> indices;
  std::condition_variable cv;
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    group.submit([&] {
      ++started;
      std::unique_lock<std::mutex> lock(mutex);
      indices.insert(executor.current_worker_index());
      cv.notify_all();
      cv.wait(lock, [&] { return indices.size() == 2; });
    });
  }
  // Let both pool threads claim their task before wait() starts helping —
  // helped tasks would run here with index -1.
  while (started.load() < 2) std::this_thread::yield();
  group.wait();
  EXPECT_EQ(indices, (std::set<int>{0, 1}));
}

}  // namespace
}  // namespace trichroma
