// Tests for the stateless model-checking explorer: validated against the
// ordered-partition counts, then used to exhaustively verify the Figure-7
// algorithm for two participants.

#include <gtest/gtest.h>

#include <set>

#include "protocols/chromatic_agreement.h"
#include "protocols/colorless_protocol.h"
#include "runtime/explore.h"
#include "runtime/shared_memory.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

using runtime::ExploreOptions;
using runtime::ExploreStats;
using runtime::explore_all_executions;
using runtime::OpPhase;
using runtime::ProcessBody;
using runtime::Turn;

ProcessBody is_once(runtime::ImmediateSnapshotObject<int>& obj, int pid,
                    std::vector<int>& view) {
  co_await Turn{OpPhase::IsWrite};
  obj.write(pid, pid);
  co_await Turn{OpPhase::IsRead};
  view.clear();
  for (const auto& [who, value] : obj.snap()) {
    (void)value;
    view.push_back(who);
  }
}

TEST(Explore, OneRoundIsExecutionsMatchFubiniNumbers) {
  // The explorer's execution count for one-shot IS must equal the number
  // of ordered set partitions: 3 for two processes, 13 for three.
  for (const int n : {2, 3}) {
    auto obj = std::make_shared<runtime::ImmediateSnapshotObject<int>>(n);
    auto views = std::make_shared<std::vector<std::vector<int>>>(n);
    std::set<std::vector<std::vector<int>>> profiles;
    const ExploreStats stats = explore_all_executions(
        [&]() {
          *obj = runtime::ImmediateSnapshotObject<int>(n);
          std::vector<ProcessBody> procs;
          for (int i = 0; i < n; ++i) {
            procs.push_back(is_once(*obj, i, (*views)[static_cast<std::size_t>(i)]));
          }
          return procs;
        },
        [&]() { profiles.insert(*views); });
    EXPECT_TRUE(stats.exhaustive);
    EXPECT_EQ(stats.executions, n == 2 ? 3u : 13u);
    EXPECT_EQ(profiles.size(), stats.executions);  // all distinct outcomes
  }
}

TEST(Explore, CountsInterleavingsOfSingleOps) {
  // Two processes, one Single op each: exactly 2 interleavings.
  auto snap = std::make_shared<runtime::SnapshotObject<int>>(2);
  struct Body {
    static ProcessBody run(runtime::SnapshotObject<int>& s, int pid) {
      co_await Turn{OpPhase::Single};
      s.update(pid, pid);
    }
  };
  const ExploreStats stats = explore_all_executions(
      [&]() {
        std::vector<ProcessBody> procs;
        procs.push_back(Body::run(*snap, 0));
        procs.push_back(Body::run(*snap, 1));
        return procs;
      },
      []() {});
  EXPECT_EQ(stats.executions, 2u);
}

TEST(Explore, CapReportsNonExhaustive) {
  auto obj = std::make_shared<runtime::ImmediateSnapshotObject<int>>(3);
  auto views = std::make_shared<std::vector<std::vector<int>>>(3);
  ExploreOptions options;
  options.max_executions = 5;
  const ExploreStats stats = explore_all_executions(
      [&]() {
        *obj = runtime::ImmediateSnapshotObject<int>(3);
        std::vector<ProcessBody> procs;
        for (int i = 0; i < 3; ++i) {
          procs.push_back(is_once(*obj, i, (*views)[static_cast<std::size_t>(i)]));
        }
        return procs;
      },
      []() {}, options);
  EXPECT_FALSE(stats.exhaustive);
  EXPECT_EQ(stats.executions, 5u);
}

TEST(Explore, Figure7TwoParticipantsExhaustive) {
  // Every interleaving of the Figure-7 algorithm with participants {P0, P2}
  // on the subdivision task yields chromatic Δ-valid decisions. This is a
  // complete proof over the model for this participant set, not a sample.
  const Task t = zoo::subdivision_task(1);
  const auto algorithm = protocols::synthesize_colorless(t, 1);
  ASSERT_TRUE(algorithm.has_value());
  const Simplex facet = t.input.facets().front();
  const std::vector<std::pair<int, VertexId>> inputs{{0, facet[0]}, {2, facet[2]}};

  auto shared = std::make_shared<protocols::AgreementShared>(3, algorithm->rounds);
  auto outcomes =
      std::make_shared<std::vector<protocols::AgreementOutcome>>(2);
  std::size_t valid = 0, total = 0;
  ExploreOptions options;
  options.max_executions = 400'000;
  const ExploreStats stats = explore_all_executions(
      [&]() {
        *shared = protocols::AgreementShared(3, algorithm->rounds);
        *outcomes = std::vector<protocols::AgreementOutcome>(2);
        std::vector<ProcessBody> procs(3);
        procs[0] = protocols::agreement_process(*shared, t, *algorithm, 0,
                                                facet[0], (*outcomes)[0]);
        procs[2] = protocols::agreement_process(*shared, t, *algorithm, 2,
                                                facet[2], (*outcomes)[1]);
        return procs;
      },
      [&]() {
        ++total;
        if (protocols::outcomes_valid(t, inputs, *outcomes)) ++valid;
      },
      options);
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_GT(total, 100u);  // a genuinely large execution space
  EXPECT_EQ(valid, total);
}

}  // namespace
}  // namespace trichroma
