// Tests for the coroutine scheduler and the shared-memory objects:
// atomicity of single steps, immediate-snapshot block semantics
// (self-inclusion, containment, immediacy), deterministic replay, and the
// randomized adversary.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "runtime/shared_memory.h"
#include "runtime/system.h"

namespace trichroma::runtime {
namespace {

// A tiny protocol: write own id, collect, remember what was seen.
ProcessBody write_then_scan(SnapshotObject<int>& snap, int pid,
                            std::vector<int>& seen) {
  co_await Turn{OpPhase::Single};
  snap.update(pid, pid * 10);
  co_await Turn{OpPhase::Single};
  for (const auto& [who, value] : snap.scan_present()) {
    (void)value;
    seen.push_back(who);
  }
}

TEST(Runtime, SequentialScheduleSeesPrefix) {
  SnapshotObject<int> snap(3);
  std::vector<std::vector<int>> seen(3);
  std::vector<ProcessBody> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(write_then_scan(snap, i, seen[i]));
  Executor ex(std::move(procs));
  // Fully sequential: P0 writes+scans, then P1, then P2.
  ex.run(Schedule{{0}, {0}, {1}, {1}, {2}, {2}});
  EXPECT_EQ(seen[0], (std::vector<int>{0}));
  EXPECT_EQ(seen[1], (std::vector<int>{0, 1}));
  EXPECT_EQ(seen[2], (std::vector<int>{0, 1, 2}));
}

TEST(Runtime, InterleavedScheduleSeesConcurrentWrites) {
  SnapshotObject<int> snap(3);
  std::vector<std::vector<int>> seen(3);
  std::vector<ProcessBody> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(write_then_scan(snap, i, seen[i]));
  Executor ex(std::move(procs));
  // All write first, then all scan: everybody sees everybody.
  ex.run(Schedule{{0}, {1}, {2}, {0}, {1}, {2}});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], (std::vector<int>{0, 1, 2}));
  }
}

TEST(Runtime, ExecutorRejectsFinishedProcess) {
  SnapshotObject<int> snap(1);
  std::vector<int> seen;
  std::vector<ProcessBody> procs;
  procs.push_back(write_then_scan(snap, 0, seen));
  Executor ex(std::move(procs));
  ex.run({});
  EXPECT_TRUE(ex.all_done());
  EXPECT_THROW(ex.step(Block{0}), std::logic_error);
}

TEST(Runtime, EmptySlotsActAsAbsentProcesses) {
  SnapshotObject<int> snap(3);
  std::vector<int> seen;
  std::vector<ProcessBody> procs(3);  // only pid 1 exists
  procs[1] = write_then_scan(snap, 1, seen);
  Executor ex(std::move(procs));
  EXPECT_EQ(ex.enabled(), (std::vector<int>{1}));
  ex.run({});
  EXPECT_EQ(seen, (std::vector<int>{1}));
}

// Immediate snapshot protocol: one write-snapshot, record the view.
ProcessBody is_once(ImmediateSnapshotObject<int>& obj, int pid,
                    std::vector<int>& view) {
  co_await Turn{OpPhase::IsWrite};
  obj.write(pid, pid);
  co_await Turn{OpPhase::IsRead};
  for (const auto& [who, value] : obj.snap()) {
    (void)value;
    view.push_back(who);
  }
}

/// Runs the 3-process one-shot IS under `schedule`, returns views by pid.
std::vector<std::vector<int>> run_is(const Schedule& schedule) {
  ImmediateSnapshotObject<int> obj(3);
  std::vector<std::vector<int>> views(3);
  std::vector<ProcessBody> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(is_once(obj, i, views[i]));
  Executor ex(std::move(procs));
  ex.run(schedule);
  return views;
}

TEST(Runtime, ImmediateSnapshotBlockSemantics) {
  // One block {0,1,2}: everyone sees everyone.
  const auto views = run_is(Schedule{{0, 1, 2}});
  for (const auto& v : views) EXPECT_EQ(v.size(), 3u);
}

TEST(Runtime, ImmediateSnapshotOrderedBlocks) {
  // Blocks ({1}, {0,2}): P1 sees {1}; P0 and P2 see all three.
  const auto views = run_is(Schedule{{1}, {0, 2}});
  EXPECT_EQ(views[1], (std::vector<int>{1}));
  EXPECT_EQ(views[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(views[2], (std::vector<int>{0, 1, 2}));
}

TEST(Runtime, ImmediateSnapshotPropertiesExhaustive) {
  // Over all 13 ordered partitions: self-inclusion, containment (views are
  // totally ordered), immediacy (j ∈ view_i ⇒ view_j ⊆ view_i).
  for (const Schedule& schedule : ordered_partition_schedules({0, 1, 2})) {
    const auto views = run_is(schedule);
    for (int i = 0; i < 3; ++i) {
      const auto& vi = views[static_cast<std::size_t>(i)];
      EXPECT_NE(std::find(vi.begin(), vi.end(), i), vi.end());  // self-inclusion
      for (int j : vi) {
        const auto& vj = views[static_cast<std::size_t>(j)];
        EXPECT_TRUE(std::includes(vi.begin(), vi.end(), vj.begin(), vj.end()));
      }
    }
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        const auto& vi = views[static_cast<std::size_t>(i)];
        const auto& vj = views[static_cast<std::size_t>(j)];
        EXPECT_TRUE(std::includes(vi.begin(), vi.end(), vj.begin(), vj.end()) ||
                    std::includes(vj.begin(), vj.end(), vi.begin(), vi.end()));
      }
    }
  }
}

TEST(Runtime, ThirteenDistinctViewProfiles) {
  // The 13 ordered partitions give 13 distinct view profiles — the facets
  // of the standard chromatic subdivision.
  std::set<std::vector<std::vector<int>>> profiles;
  for (const Schedule& schedule : ordered_partition_schedules({0, 1, 2})) {
    profiles.insert(run_is(schedule));
  }
  EXPECT_EQ(profiles.size(), 13u);
}

TEST(Runtime, MultiBlockRequiresIsWrite) {
  SnapshotObject<int> snap(2);
  std::vector<int> seen0, seen1;
  std::vector<ProcessBody> procs;
  procs.push_back(write_then_scan(snap, 0, seen0));
  procs.push_back(write_then_scan(snap, 1, seen1));
  Executor ex(std::move(procs));
  EXPECT_THROW(ex.step(Block{0, 1}), std::logic_error);  // Single ops can't block
}

TEST(Runtime, RandomAdversaryTerminatesAndIsValid) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ImmediateSnapshotObject<int> obj(3);
    std::vector<std::vector<int>> views(3);
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) procs.push_back(is_once(obj, i, views[i]));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed);
    ex.run_random(rng);
    EXPECT_TRUE(ex.all_done());
    for (int i = 0; i < 3; ++i) {
      const auto& vi = views[static_cast<std::size_t>(i)];
      EXPECT_NE(std::find(vi.begin(), vi.end(), i), vi.end());
    }
  }
}

TEST(Runtime, StepCapThrows) {
  // A process that never finishes: the run must hit its cap.
  struct Never {
    static ProcessBody spin() {
      for (;;) co_await Turn{OpPhase::Single};
    }
  };
  std::vector<ProcessBody> procs;
  procs.push_back(Never::spin());
  Executor ex(std::move(procs));
  EXPECT_THROW(ex.run({}, 100), std::runtime_error);
}

TEST(Runtime, AllIisSchedulesCount) {
  EXPECT_EQ(all_iis_schedules({0, 1, 2}, 1).size(), 13u);
  EXPECT_EQ(all_iis_schedules({0, 1, 2}, 2).size(), 169u);
  EXPECT_EQ(all_iis_schedules({0, 1}, 2).size(), 9u);
}

TEST(Runtime, RegisterFileBasics) {
  RegisterFile<int> regs(3);
  EXPECT_FALSE(regs.read(0).has_value());
  regs.write(0, 42);
  EXPECT_EQ(regs.read(0).value(), 42);
  EXPECT_EQ(regs.size(), 3);
}

}  // namespace
}  // namespace trichroma::runtime
