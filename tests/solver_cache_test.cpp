// End-to-end verdict-store tests: the pipeline consulting/publishing the
// store (solver/pipeline.cpp), the byte-identity contract between cold and
// warm reports, and the batch driver's fingerprint dedup pre-pass.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "io/report.h"
#include "solver/batch.h"
#include "solver/pipeline.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = testing::TempDir() + "trichroma-cache-" + tag +
                          "-" + std::to_string(++counter);
  fs::remove_all(dir);
  return dir;
}

// Drops every line carrying the token `"cache":` — exactly the filter the
// report schema documents for warm-vs-cold comparisons (io/report.h).
std::string strip_cache_lines(const std::string& json) {
  std::string out;
  std::size_t start = 0;
  while (start < json.size()) {
    std::size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    if (line.find("\"cache\":") == std::string::npos) {
      out += line;
      out += '\n';
    }
    start = end + 1;
  }
  return out;
}

std::string redacted(const PipelineReport& report) {
  io::ReportJsonOptions json;
  json.redact_timings = true;
  return io::to_json(report, json);
}

TEST(PipelineCache, OffByDefault) {
  const PipelineReport r =
      run_pipeline(zoo::consensus_2(), SolvabilityOptions{}).report;
  EXPECT_EQ(r.cache, "off");
  EXPECT_EQ(r.cache_hits, 0u);
  EXPECT_EQ(r.cache_misses, 0u);
}

TEST(PipelineCache, MissThenHitIsByteIdenticalModuloCacheLines) {
  SolvabilityOptions options;
  options.cache_dir = fresh_dir("hourglass");
  const Task task = zoo::hourglass();

  const PipelineReport cold = run_pipeline(task, options).report;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(cold.cache_misses, 1u);
  EXPECT_GT(cold.cache_store_bytes, 0u);  // conclusive ⇒ published

  const PipelineReport warm = run_pipeline(task, options).report;
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.verdict, cold.verdict);
  EXPECT_EQ(strip_cache_lines(redacted(warm)),
            strip_cache_lines(redacted(cold)));
}

TEST(PipelineCache, TwoProcessRouteUsesTheStoreToo) {
  SolvabilityOptions options;
  options.cache_dir = fresh_dir("twoproc");
  const Task task = zoo::consensus_2();
  const PipelineReport cold = run_pipeline(task, options).report;
  EXPECT_EQ(cold.cache, "miss");
  const PipelineReport warm = run_pipeline(task, options).report;
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(strip_cache_lines(redacted(warm)),
            strip_cache_lines(redacted(cold)));
}

// A hit by a chromatically isomorphic twin keeps the twin's own display
// identity: the store replays identity's verdict for subdivision0, but the
// report must still say "subdivision-0".
TEST(PipelineCache, IsomorphicTwinHitKeepsLiveIdentity) {
  SolvabilityOptions options;
  options.cache_dir = fresh_dir("twins");
  const Task identity = zoo::identity_task();
  const Task twin = zoo::subdivision_task(0);

  const PipelineReport cold = run_pipeline(identity, options).report;
  EXPECT_EQ(cold.cache, "miss");
  const PipelineReport warm = run_pipeline(twin, options).report;
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.task_name, twin.name);
  EXPECT_NE(warm.task_name, identity.name);
  EXPECT_EQ(warm.verdict, cold.verdict);
  EXPECT_EQ(warm.radius, cold.radius);
}

// Different budgets must never alias: a record stored under one budget is
// never an exact hit under another. A deeper max_radius over the same store
// does warm-start, though — hourglass is Unsolvable, so the sibling record
// is replay-safe and the run reports "artifacts", not "hit".
TEST(PipelineCache, BudgetIsPartOfTheKey) {
  SolvabilityOptions options;
  options.cache_dir = fresh_dir("budget");
  const Task task = zoo::hourglass();
  EXPECT_EQ(run_pipeline(task, options).report.cache, "miss");
  EXPECT_EQ(run_pipeline(task, options).report.cache, "hit");
  SolvabilityOptions deeper = options;
  deeper.max_radius = options.max_radius + 1;
  const PipelineReport warm = run_pipeline(task, deeper).report;
  EXPECT_EQ(warm.cache, "artifacts");
  EXPECT_EQ(warm.cache_hits, 0);
  EXPECT_EQ(warm.cache_misses, 1);
  // A sibling replay re-publishes under the live digest: the same deeper
  // budget is an exact hit the second time around.
  EXPECT_EQ(run_pipeline(task, deeper).report.cache, "hit");
}

// Unknown verdicts are not conclusive and must not be published: the second
// run is a miss again (and gets another chance at a bigger budget later).
TEST(PipelineCache, UnknownVerdictsAreNotPublished) {
  SolvabilityOptions options;
  options.cache_dir = fresh_dir("unknown");
  options.use_characterization = false;
  options.max_radius = 0;  // approx agreement needs r >= 1: Unknown
  const Task task = zoo::approximate_agreement(2);
  const PipelineReport first = run_pipeline(task, options).report;
  ASSERT_EQ(first.verdict, Verdict::Unknown);
  EXPECT_EQ(first.cache, "miss");
  const PipelineReport second = run_pipeline(task, options).report;
  EXPECT_EQ(second.cache, "miss");
}

TEST(BatchCache, WarmRunAnswersEverySelectedTaskFromTheStore) {
  BatchOptions batch;
  batch.solve.cache_dir = fresh_dir("batch");
  batch.jobs = 2;
  batch.only = {"identity", "subdivision0", "hourglass", "consensus3"};

  const BatchResult cold = run_batch(batch);
  ASSERT_EQ(cold.tasks.size(), 4u);
  // subdivision0 is identity's isomorphic twin: the dedup pre-pass replays
  // it without running, already a hit on the cold pass — under its own
  // task name, not its twin's.
  EXPECT_EQ(cold.cache_hits, 1);
  EXPECT_EQ(cold.cache_misses, 3);
  EXPECT_EQ(cold.tasks[1].name, "subdivision0");
  EXPECT_EQ(cold.tasks[1].report.cache, "hit");
  EXPECT_EQ(cold.tasks[1].report.task_name, zoo::subdivision_task(0).name);
  EXPECT_NE(cold.tasks[1].report.task_name, cold.tasks[0].report.task_name);

  const BatchResult warm = run_batch(batch);
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(warm.cache_misses, 0);
  for (std::size_t i = 0; i < cold.tasks.size(); ++i) {
    EXPECT_EQ(strip_cache_lines(redacted(warm.tasks[i].report)),
              strip_cache_lines(redacted(cold.tasks[i].report)))
        << cold.tasks[i].name;
  }
}

// Cold cached runs stay deterministic at every jobs value — including the
// cache fields themselves, because the dedup pre-pass (not scheduling)
// decides which twin runs.
TEST(BatchCache, ColdRunIsJobsIndependentIncludingCacheFields) {
  BatchOptions batch;
  batch.only = {"identity", "subdivision0", "hourglass"};
  batch.solve.cache_dir = fresh_dir("jobs1");
  batch.jobs = 1;
  const BatchResult serial = run_batch(batch);
  batch.solve.cache_dir = fresh_dir("jobs4");
  batch.jobs = 4;
  const BatchResult wide = run_batch(batch);
  ASSERT_EQ(serial.tasks.size(), wide.tasks.size());
  for (std::size_t i = 0; i < serial.tasks.size(); ++i) {
    EXPECT_EQ(redacted(serial.tasks[i].report),
              redacted(wide.tasks[i].report))
        << serial.tasks[i].name;
  }
}

TEST(BatchCache, CacheOffBatchHasNoCacheCounts) {
  BatchOptions batch;
  batch.only = {"consensus_2"};
  const BatchResult result = run_batch(batch);
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_EQ(result.cache_hits, 0);
  EXPECT_EQ(result.cache_misses, 0);
  EXPECT_EQ(result.tasks[0].report.cache, "off");
}

}  // namespace
}  // namespace trichroma
