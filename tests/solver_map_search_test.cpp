// Tests for the decision-map CSP search (the executable ACT direction).

#include <gtest/gtest.h>

#include "solver/map_search.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

MapSearchResult search(const Task& task, int rounds, bool chromatic) {
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, rounds);
  MapSearchOptions options;
  options.chromatic = chromatic;
  return find_decision_map(*task.pool, domain, task, options);
}

TEST(MapSearch, IdentityTaskSolvableAtRadiusZero) {
  const Task t = zoo::identity_task();
  const auto r = search(t, 0, true);
  EXPECT_TRUE(r.found);
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 0);
  EXPECT_TRUE(validate_decision_map(*t.pool, domain, t, r.map, true));
}

TEST(MapSearch, RenamingSolvableAtRadiusZero) {
  // Ids are known, so index-renaming needs no communication.
  EXPECT_TRUE(search(zoo::renaming(3), 0, true).found);
  EXPECT_TRUE(search(zoo::renaming(5), 0, true).found);
}

TEST(MapSearch, SubdivisionTaskNeedsExactlyItsRadius) {
  for (int r = 0; r <= 2; ++r) {
    const Task t = zoo::subdivision_task(r);
    for (int attempt = 0; attempt < r; ++attempt) {
      const auto res = search(t, attempt, true);
      EXPECT_FALSE(res.found) << "r=" << r << " attempt=" << attempt;
      EXPECT_TRUE(res.exhausted);
    }
    const auto res = search(t, r, true);
    EXPECT_TRUE(res.found) << "r=" << r;
    const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, r);
    EXPECT_TRUE(validate_decision_map(*t.pool, domain, t, res.map, true));
  }
}

TEST(MapSearch, ConsensusHasNoMapAtSmallRadii) {
  const Task t = zoo::consensus(3);
  for (int r = 0; r <= 1; ++r) {
    const auto res = search(t, r, true);
    EXPECT_FALSE(res.found);
    EXPECT_TRUE(res.exhausted);
  }
}

TEST(MapSearch, SetAgreementHasNoMapAtSmallRadii) {
  const Task t = zoo::set_agreement_32();
  for (int r = 0; r <= 1; ++r) {
    const auto res = search(t, r, true);
    EXPECT_FALSE(res.found) << "radius " << r;
    EXPECT_TRUE(res.exhausted);
  }
}

TEST(MapSearch, HourglassChromaticFailsButColorlessSucceeds) {
  const Task t = zoo::hourglass();
  EXPECT_FALSE(search(t, 1, true).found);
  EXPECT_FALSE(search(t, 2, true).found);
  EXPECT_FALSE(search(t, 1, false).found);
  const auto colorless = search(t, 2, false);
  EXPECT_TRUE(colorless.found);
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 2);
  EXPECT_TRUE(validate_decision_map(*t.pool, domain, t, colorless.map, false));
  // And it is genuinely not color-preserving somewhere.
  EXPECT_FALSE(validate_decision_map(*t.pool, domain, t, colorless.map, true));
}

TEST(MapSearch, ApproximateAgreementSolvable) {
  const Task t = zoo::approximate_agreement(2);
  bool found = false;
  int radius = -1;
  for (int r = 0; r <= 2 && !found; ++r) {
    found = search(t, r, true).found;
    radius = r;
  }
  EXPECT_TRUE(found);
  EXPECT_GE(radius, 1);  // radius 0 cannot mix inputs
}

TEST(MapSearch, WitnessIsCarriedByDelta) {
  const Task t = zoo::subdivision_task(1);
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 1);
  MapSearchOptions options;
  const auto res = find_decision_map(*t.pool, domain, t, options);
  ASSERT_TRUE(res.found);
  // Spot-check the carrier condition on every simplex.
  domain.complex.for_each([&](const Simplex& xi) {
    EXPECT_TRUE(t.delta.allows(domain.carrier_of(xi), res.map.apply(xi)));
  });
}

TEST(MapSearch, NodeCapReportsNonExhaustive) {
  const Task t = zoo::set_agreement_32();
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 1);
  MapSearchOptions options;
  options.node_cap = 3;
  const auto res = find_decision_map(*t.pool, domain, t, options);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
}

TEST(MapSearch, DomainWiderThan64ReportsOverflowNotUnsat) {
  // 65 candidate names per corner vertex exceed the 64-bit word-parallel
  // domain representation. Before the explicit outcome this silently set
  // trivially_unsat, which reads as a (bogus) impossibility proof; it must
  // report an inconclusive overflow instead.
  const Task t = zoo::renaming(65);
  const auto res = search(t, 0, true);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted);
  EXPECT_TRUE(res.domain_overflow);
  EXPECT_EQ(res.nodes_explored, 0u);
  // Exactly 64 still fits and must genuinely search (renaming with ids
  // known is solvable at radius 0).
  const auto res64 = search(zoo::renaming(64), 0, true);
  EXPECT_TRUE(res64.found);
  EXPECT_FALSE(res64.domain_overflow);
}

TEST(MapSearch, LoopAgreementInstances) {
  // Filled hexagon: contractible loop, solvable at small radius.
  const Task filled = zoo::loop_agreement_filled_triangle();
  bool found = false;
  for (int r = 0; r <= 2 && !found; ++r) found = search(filled, r, true).found;
  EXPECT_TRUE(found);
  // Hollow hexagon: the loop does not contract; no map at small radii.
  const Task hollow = zoo::loop_agreement_hollow_triangle();
  EXPECT_FALSE(search(hollow, 0, true).found);
  EXPECT_FALSE(search(hollow, 1, true).found);
}

}  // namespace
}  // namespace trichroma
