// Tests for the parallel decision-map search engine: the determinism
// contract (verdict, witness AND nodes_explored bit-identical for every
// thread count — the canonical prefix accounting makes even cap-truncated
// runs agree), the cross-call Δ-image / edge-mask cache, and the cap
// behavior under parallel search.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "solver/map_search.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

struct ZooCase {
  std::string name;
  std::function<Task()> make;
};

// Every three-process zoo task (four-process ones exercise the n-ary path
// elsewhere; two-process tasks never reach the map search).
const std::vector<ZooCase>& zoo_cases() {
  static const std::vector<ZooCase> cases = {
      {"identity", [] { return zoo::identity_task(); }},
      {"renaming3", [] { return zoo::renaming(3); }},
      {"renaming5", [] { return zoo::renaming(5); }},
      {"consensus3", [] { return zoo::consensus(3); }},
      {"set_agreement_32", [] { return zoo::set_agreement_32(); }},
      {"majority_consensus", [] { return zoo::majority_consensus(); }},
      {"hourglass", [] { return zoo::hourglass(); }},
      {"twisted_hourglass", [] { return zoo::twisted_hourglass(); }},
      {"pinwheel", [] { return zoo::pinwheel(); }},
      {"fig3", [] { return zoo::fig3_running_example(); }},
      {"subdivision0", [] { return zoo::subdivision_task(0); }},
      {"subdivision1", [] { return zoo::subdivision_task(1); }},
      {"approx_agreement", [] { return zoo::approximate_agreement(2); }},
      {"fan6", [] { return zoo::fan_task(6); }},
      {"test_and_set", [] { return zoo::test_and_set(3); }},
      {"weak_symmetry_breaking", [] { return zoo::weak_symmetry_breaking(3); }},
      {"loop_hollow", [] { return zoo::loop_agreement_hollow_triangle(); }},
      {"loop_filled", [] { return zoo::loop_agreement_filled_triangle(); }},
  };
  return cases;
}

TEST(ParallelMapSearch, VerdictsIdenticalAcrossThreadCountsOnWholeZoo) {
  for (const ZooCase& c : zoo_cases()) {
    const Task task = c.make();
    for (int radius = 0; radius <= 1; ++radius) {
      for (const bool chromatic : {true, false}) {
        const SubdividedComplex domain =
            chromatic_subdivision(*task.pool, task.input, radius);
        MapSearchOptions options;
        options.chromatic = chromatic;
        options.threads = 1;
        options.node_cap = 300'000;
        const MapSearchResult sequential =
            find_decision_map(*task.pool, domain, task, options);
        // The contract covers cap-truncated searches too (majority_consensus
        // at r=1 is a 20M-node refutation; at this cap it reports Unknown
        // with the same node count everywhere).
        for (const int threads : {2, 8}) {
          options.threads = threads;
          const MapSearchResult parallel =
              find_decision_map(*task.pool, domain, task, options);
          EXPECT_EQ(parallel.found, sequential.found)
              << c.name << " r=" << radius << " chromatic=" << chromatic
              << " threads=" << threads;
          EXPECT_EQ(parallel.exhausted, sequential.exhausted)
              << c.name << " r=" << radius << " chromatic=" << chromatic
              << " threads=" << threads;
          EXPECT_EQ(parallel.nodes_explored, sequential.nodes_explored)
              << c.name << " r=" << radius << " chromatic=" << chromatic
              << " threads=" << threads;
          if (parallel.found) {
            // Not just *a* witness: the same witness (canonical accounting
            // always reports the DFS-first map).
            EXPECT_EQ(parallel.map.entries(), sequential.map.entries())
                << c.name << " r=" << radius << " chromatic=" << chromatic
                << " threads=" << threads;
            EXPECT_TRUE(validate_decision_map(*task.pool, domain, task,
                                              parallel.map, chromatic))
                << c.name << " r=" << radius << " chromatic=" << chromatic
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(ParallelMapSearch, HardSatisfiableInstanceAllThreadCounts) {
  // Radius-2 witness search: the domain is Ch^2 (169 facets), big enough
  // that the parallel engine genuinely splits work.
  const Task task = zoo::subdivision_task(2);
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, 2);
  for (const int threads : {1, 2, 8}) {
    MapSearchOptions options;
    options.threads = threads;
    const MapSearchResult res =
        find_decision_map(*task.pool, domain, task, options);
    EXPECT_TRUE(res.found) << "threads=" << threads;
    EXPECT_TRUE(validate_decision_map(*task.pool, domain, task, res.map, true))
        << "threads=" << threads;
    EXPECT_GT(res.nodes_explored, 0u);
  }
}

TEST(ParallelMapSearch, NodeCapReportsNonExhaustiveInParallel) {
  const Task task = zoo::set_agreement_32();
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, 1);
  MapSearchOptions base;
  base.node_cap = 3;
  base.threads = 1;
  const MapSearchResult sequential =
      find_decision_map(*task.pool, domain, task, base);
  EXPECT_FALSE(sequential.found);
  EXPECT_FALSE(sequential.exhausted);
  for (const int threads : {2, 8}) {
    MapSearchOptions options;
    options.node_cap = 3;
    options.threads = threads;
    const MapSearchResult res =
        find_decision_map(*task.pool, domain, task, options);
    EXPECT_FALSE(res.found) << "threads=" << threads;
    EXPECT_FALSE(res.exhausted) << "threads=" << threads;
    // The cap is enforced globally: the truncation point cannot drift with
    // the worker count.
    EXPECT_EQ(res.nodes_explored, sequential.nodes_explored)
        << "threads=" << threads;
  }
}

TEST(ParallelMapSearch, ThreadsZeroMeansHardwareConcurrency) {
  // threads = 0 must behave like some valid thread count — same verdict.
  const Task task = zoo::hourglass();
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, 1);
  MapSearchOptions options;
  options.threads = 0;
  const MapSearchResult res = find_decision_map(*task.pool, domain, task, options);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.exhausted);
}

TEST(DeltaImageCacheTest, ReusedAcrossRadiiAndModes) {
  const Task task = zoo::subdivision_task(1);
  DeltaImageCache cache;
  MapSearchOptions options;
  options.image_cache = &cache;
  SubdivisionLadder ladder(*task.pool, task.input);

  find_decision_map(*task.pool, ladder.at(0), task, options);
  const std::size_t after_r0 = cache.size();
  EXPECT_GT(after_r0, 0u);
  find_decision_map(*task.pool, ladder.at(1), task, options);
  // The carriers at radius 1 are still simplices of the base complex, so
  // the image memo does not grow — every lookup hits.
  EXPECT_EQ(cache.size(), after_r0);
  EXPECT_GT(cache.hits(), 0u);
  // Color-agnostic probe on the same task shares Δ, hence the cache.
  options.chromatic = false;
  const std::size_t hits_before = cache.hits();
  find_decision_map(*task.pool, ladder.at(1), task, options);
  EXPECT_EQ(cache.size(), after_r0);
  EXPECT_GT(cache.hits(), hits_before);
}

TEST(DeltaImageCacheTest, CachedSearchMatchesUncached) {
  for (const ZooCase& c : zoo_cases()) {
    const Task task = c.make();
    DeltaImageCache cache;
    SubdivisionLadder ladder(*task.pool, task.input);
    for (int radius = 0; radius <= 1; ++radius) {
      MapSearchOptions cached;
      cached.image_cache = &cache;
      MapSearchOptions uncached;
      const MapSearchResult a =
          find_decision_map(*task.pool, ladder.at(radius), task, cached);
      const MapSearchResult b =
          find_decision_map(*task.pool, ladder.at(radius), task, uncached);
      EXPECT_EQ(a.found, b.found) << c.name << " r=" << radius;
      EXPECT_EQ(a.exhausted, b.exhausted) << c.name << " r=" << radius;
      EXPECT_EQ(a.nodes_explored, b.nodes_explored) << c.name << " r=" << radius;
    }
  }
}

TEST(DeltaImageCacheTest, EdgeMaskClassesCollapse) {
  // The distinct carriers are faces of the *base* complex, so as the
  // subdivision grows (here Ch^2: hundreds of edges) the edge population
  // collapses onto a bounded set of (image, color) mask classes.
  const Task task = zoo::subdivision_task(1);
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, 2);
  std::size_t edges = 0;
  domain.complex.for_each([&](const Simplex& s) {
    if (s.dim() == 1) ++edges;
  });
  DeltaImageCache cache;
  MapSearchOptions options;
  options.image_cache = &cache;
  find_decision_map(*task.pool, domain, task, options);
  EXPECT_GT(edges, cache.edge_mask_misses());
  EXPECT_EQ(cache.edge_mask_hits() + cache.edge_mask_misses(), edges);
}

TEST(ParallelSolvability, DecideSolvabilityVerdictIndependentOfThreads) {
  // End-to-end: the full decision procedure (both probe loops, ladders and
  // caches engaged) returns the same verdict for every thread count.
  const std::vector<ZooCase> sample = {
      {"hourglass", [] { return zoo::hourglass(); }},
      {"pinwheel", [] { return zoo::pinwheel(); }},
      {"subdivision1", [] { return zoo::subdivision_task(1); }},
      {"approx_agreement", [] { return zoo::approximate_agreement(2); }},
      {"renaming3", [] { return zoo::renaming(3); }},
  };
  for (const ZooCase& c : sample) {
    SolvabilityOptions base_options;
    base_options.threads = 1;
    const Task t1 = c.make();
    const SolvabilityResult sequential = decide_solvability(t1, base_options);
    for (const int threads : {2, 8}) {
      SolvabilityOptions options;
      options.threads = threads;
      const Task tn = c.make();
      const SolvabilityResult parallel = decide_solvability(tn, options);
      EXPECT_EQ(parallel.verdict, sequential.verdict)
          << c.name << " threads=" << threads;
      EXPECT_EQ(parallel.radius, sequential.radius)
          << c.name << " threads=" << threads;
    }
  }
}

TEST(ParallelSolvability, ColdAndLadderProbesAgree) {
  // reuse_subdivisions / reuse_images off reproduces the seed engine; the
  // verdict and radius must not depend on the caching strategy.
  for (const ZooCase& c : zoo_cases()) {
    SolvabilityOptions cached;
    cached.threads = 1;
    SolvabilityOptions cold;
    cold.threads = 1;
    cold.reuse_subdivisions = false;
    cold.reuse_images = false;
    const SolvabilityResult a = decide_solvability(c.make(), cached);
    const SolvabilityResult b = decide_solvability(c.make(), cold);
    EXPECT_EQ(a.verdict, b.verdict) << c.name;
    EXPECT_EQ(a.radius, b.radius) << c.name;
  }
}

TEST(ParallelSolvability, CapReasonNamesProbeAndRadius) {
  // A starved budget must say exactly which probe and radius were truncated.
  // Characterization off so the obstruction engines cannot preempt the probe
  // loop (set agreement would otherwise be refuted before any search runs);
  // its radius-1 refutation needs a few hundred nodes, so a 50-node budget
  // reliably truncates the probe.
  SolvabilityOptions options;
  options.threads = 1;
  options.node_cap = 50;
  options.max_radius = 1;
  options.use_characterization = false;
  const SolvabilityResult r = decide_solvability(zoo::set_agreement_32(), options);
  ASSERT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_NE(r.reason.find("chromatic probe at radius"), std::string::npos)
      << r.reason;
  EXPECT_NE(r.reason.find("node cap"), std::string::npos) << r.reason;
}

}  // namespace
}  // namespace trichroma
