// The racing pipeline's contracts: the verdict, reason, radius and
// via_characterization are bit-identical across thread counts (pinned here
// against the pre-refactor sequential ladder's golden table), and a
// conclusive obstruction cancels in-flight probes instead of letting them
// run to their node cap.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "solver/map_search.h"
#include "solver/pipeline.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

// ---------------------------------------------------------------------------
// Scheduler determinism
// ---------------------------------------------------------------------------

struct GoldenRow {
  const char* name;
  Verdict verdict;
  int radius;
  bool via_characterization;
  const char* reason;
};

constexpr const char* kCspReason =
    "post-split connectivity obstruction on T' (Theorem 5.1 + Corollary 5.5 "
    "shape): no corner assignment is component-consistent on every input edge";
constexpr const char* kHomologyPrefix =
    "post-split homological obstruction on T' (no continuous map |I| -> |O'| "
    "carried by Δ'): boundary loop of facet ";

// The sequential ladder's verdicts on the whole catalog, captured before the
// refactor (solvable reasons no longer carry the racy "(N search nodes)"
// suffix — node counts live in the per-engine report now).
const std::vector<GoldenRow>& golden_table() {
  static const std::vector<GoldenRow> rows = {
      {"identity", Verdict::Solvable, 0, false,
       "chromatic decision map found on Ch^0(I)"},
      {"renaming5", Verdict::Solvable, 0, false,
       "chromatic decision map found on Ch^0(I)"},
      {"subdivision0", Verdict::Solvable, 0, false,
       "chromatic decision map found on Ch^0(I)"},
      {"subdivision1", Verdict::Solvable, 1, false,
       "chromatic decision map found on Ch^1(I)"},
      {"approx_agreement", Verdict::Solvable, 1, false,
       "chromatic decision map found on Ch^1(I)"},
      {"fan6", Verdict::Solvable, 0, false,
       "chromatic decision map found on Ch^0(I)"},
      {"fig3", Verdict::Solvable, 0, false,
       "chromatic decision map found on Ch^0(I)"},
      {"loop_filled", Verdict::Solvable, 1, false,
       "chromatic decision map found on Ch^1(I)"},
      {"consensus3", Verdict::Unsolvable, -1, true, kCspReason},
      {"set_agreement_32", Verdict::Unsolvable, -1, true,
       "post-split homological obstruction on T' (no continuous map |I| -> "
       "|O'| carried by Δ'): boundary loop of facet [P0:(in, 1) P1:(in, 2) "
       "P2:(in, 3)] never bounds over GF(2)"},
      {"majority_consensus", Verdict::Unsolvable, -1, true, kCspReason},
      {"hourglass", Verdict::Unsolvable, -1, true, kCspReason},
      {"pinwheel", Verdict::Unsolvable, -1, true, kCspReason},
      {"loop_hollow", Verdict::Unsolvable, -1, true,
       "post-split homological obstruction on T' (no continuous map |I| -> "
       "|O'| carried by Δ'): boundary loop of facet [P0:(idx, 0) P1:(idx, 1) "
       "P2:(idx, 2)] never bounds over GF(2)"},
      {"loop_torus", Verdict::Unsolvable, -1, true,
       "post-split homological obstruction on T' (no continuous map |I| -> "
       "|O'| carried by Δ'): boundary loop of facet [P0:(idx, 0) P1:(idx, 1) "
       "P2:(idx, 2)] never bounds over GF(2)"},
      {"loop_rp2", Verdict::Unsolvable, -1, true,
       "post-split homological obstruction on T' (no continuous map |I| -> "
       "|O'| carried by Δ'): boundary loop of facet [P0:(idx, 0) P1:(idx, 1) "
       "P2:(idx, 2)] never bounds over GF(2)"},
      {"twisted_hourglass", Verdict::Unsolvable, -1, true, kCspReason},
      {"test_and_set3", Verdict::Unsolvable, -1, true, kCspReason},
      {"wsb3", Verdict::Solvable, 0, false,
       "chromatic decision map found on Ch^0(I)"},
      {"consensus_2", Verdict::Unsolvable, -1, false,
       "Proposition 5.4: no continuous map |I| -> |O| carried by Δ (no corner "
       "assignment is component-consistent on every input edge)"},
      {"approx_agreement_2", Verdict::Solvable, -1, false,
       "Proposition 5.4: a corner assignment with connected edge images "
       "exists, giving a continuous map |I| -> |O| carried by Δ"},
  };
  return rows;
}

const zoo::CatalogEntry& catalog_entry(const char* name) {
  for (const zoo::CatalogEntry& e : zoo::catalog()) {
    if (std::string(e.name) == name) return e;
  }
  ADD_FAILURE() << "catalog is missing " << name;
  static const zoo::CatalogEntry fallback{"identity", zoo::identity_task};
  return fallback;
}

class SchedulerDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerDeterminism, VerdictAndReasonMatchGoldenTable) {
  const int threads = GetParam();
  ASSERT_EQ(golden_table().size(), zoo::catalog().size())
      << "catalog changed: regenerate the golden table";
  for (const GoldenRow& row : golden_table()) {
    const Task task = catalog_entry(row.name).build();
    SolvabilityOptions options;
    options.threads = threads;
    const SolvabilityResult r = decide_solvability(task, options);
    EXPECT_EQ(r.verdict, row.verdict) << row.name << " @ " << threads;
    EXPECT_EQ(r.reason, row.reason) << row.name << " @ " << threads;
    EXPECT_EQ(r.radius, row.radius) << row.name << " @ " << threads;
    EXPECT_EQ(r.via_characterization, row.via_characterization)
        << row.name << " @ " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SchedulerDeterminism,
                         ::testing::Values(1, 2, 8));

TEST(Pipeline, ReportListsEveryEngineInCanonicalOrder) {
  SolvabilityOptions options;
  options.threads = 1;
  const PipelineResult r = run_pipeline(zoo::hourglass(), options);
  const std::vector<const char*> expected = {
      "characterize",     "corollary-5.5",    "corollary-5.6",
      "post-split-connectivity-csp", "post-split-homology",
      "chromatic-probe",  "tp-agnostic-probe"};
  ASSERT_EQ(r.report.engines.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.report.engines[i].name, expected[i]);
  }
  // Sequential ladder on an obstructed task: the CSP concludes, the probes
  // never start.
  EXPECT_EQ(r.report.engines[3].status, EngineStatus::Conclusive);
  EXPECT_EQ(r.report.engines[5].status, EngineStatus::Skipped);
  EXPECT_EQ(r.report.engines[6].status, EngineStatus::Skipped);
}

TEST(Pipeline, DomainOverflowSurfacesInTheUnknownReason) {
  // Domains wider than 64 values are a representation limit of the
  // word-parallel search, not evidence either way; the Unknown reason must
  // name the limit and the rung it hit, not masquerade as "no map found".
  const Task t = zoo::renaming(65);
  SolvabilityOptions options;
  options.threads = 1;
  options.max_radius = 0;
  options.use_characterization = false;
  const PipelineResult r = run_pipeline(t, options);
  EXPECT_EQ(r.report.verdict, Verdict::Unknown);
  EXPECT_NE(r.report.reason.find("domain wider than 64 values"),
            std::string::npos)
      << r.report.reason;
  EXPECT_NE(r.report.reason.find("chromatic probe at radius 0"),
            std::string::npos)
      << r.report.reason;
  for (const EngineReport& e : r.report.engines) {
    if (e.name != "chromatic-probe") continue;
    ASSERT_EQ(e.overflowed.size(), 1u);
    EXPECT_EQ(e.overflowed[0], "chromatic probe at radius 0");
    EXPECT_TRUE(e.capped.empty());
  }
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Cancellation, PreTrippedTokenShortCircuitsAnEngine) {
  const Task task = zoo::set_agreement_32();
  ProbeEngine probe(task, ProbeKind::DirectChromatic);
  CancellationToken token;
  token.request_stop();
  const EngineReport r = probe.run(EngineBudget{}, token);
  EXPECT_EQ(r.status, EngineStatus::Cancelled);
  EXPECT_EQ(r.nodes_explored, 0u);
}

TEST(Cancellation, MidSearchCancelAbortsFindDecisionMap) {
  // set_agreement_32's chromatic search burns ~20M nodes before giving up;
  // a cancel raised shortly after the search starts must abort it well
  // before the cap, reporting cancelled (not exhausted).
  const Task task = zoo::set_agreement_32();
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, 2);
  std::atomic<bool> cancel{false};
  MapSearchOptions options;
  options.node_cap = 20'000'000;
  options.threads = 1;
  options.cancel = &cancel;
  std::thread trip([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.store(true);
  });
  const MapSearchResult r = find_decision_map(*task.pool, domain, task, options);
  trip.join();
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LT(r.nodes_explored, 20'000'000u);
}

TEST(Cancellation, ConclusiveObstructionHaltsInFlightProbes) {
  // Racing mode on set_agreement_32: the homology obstruction concludes in
  // ~1ms while the chromatic probe alone would take seconds to exhaust its
  // 20M-node cap. The obstruction must cancel the probe mid-flight — same
  // verdict as sequential, a small fraction of the probe-only node bill.
  SolvabilityOptions options;
  options.threads = 2;
  const PipelineResult r = run_pipeline(zoo::set_agreement_32(), options);
  EXPECT_EQ(r.report.verdict, Verdict::Unsolvable);
  EXPECT_TRUE(r.report.via_characterization);
  const EngineReport* probe = nullptr;
  for (const EngineReport& e : r.report.engines) {
    if (e.name == "chromatic-probe") probe = &e;
  }
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->status, EngineStatus::Cancelled);
  EXPECT_LT(probe->nodes_explored, 20'000'000u);
}

}  // namespace
}  // namespace trichroma
