// End-to-end verdict tests for the combined decision procedure
// (Theorem 5.1 wired both ways), including the two-process exact decision
// (Proposition 5.4).

#include <gtest/gtest.h>

#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

TEST(Solvability, IdentitySolvable) {
  const SolvabilityResult r = decide_solvability(zoo::identity_task());
  EXPECT_EQ(r.verdict, Verdict::Solvable);
  EXPECT_EQ(r.radius, 0);
  EXPECT_TRUE(r.has_chromatic_witness);
}

TEST(Solvability, SubdivisionTasksSolvableAtTheirRadius) {
  for (int rounds = 0; rounds <= 2; ++rounds) {
    const SolvabilityResult r = decide_solvability(zoo::subdivision_task(rounds));
    EXPECT_EQ(r.verdict, Verdict::Solvable);
    EXPECT_EQ(r.radius, rounds);
  }
}

TEST(Solvability, RenamingSolvable) {
  const SolvabilityResult r = decide_solvability(zoo::renaming(5));
  EXPECT_EQ(r.verdict, Verdict::Solvable);
}

TEST(Solvability, ApproximateAgreementSolvable) {
  const SolvabilityResult r = decide_solvability(zoo::approximate_agreement(2));
  EXPECT_EQ(r.verdict, Verdict::Solvable);
}

TEST(Solvability, ConsensusUnsolvable) {
  const SolvabilityResult r = decide_solvability(zoo::consensus(3));
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
  EXPECT_TRUE(r.via_characterization);
}

TEST(Solvability, SetAgreementUnsolvable) {
  // The classic impossibility — caught by the homological engine, since
  // 2-set agreement has no LAPs at all.
  const SolvabilityResult r = decide_solvability(zoo::set_agreement_32());
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
}

TEST(Solvability, HourglassUnsolvableDespiteColorlessMap) {
  const Task t = zoo::hourglass();
  const SolvabilityResult r = decide_solvability(t);
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
  // The colorless probe demonstrates the gap the paper's characterization
  // explains: the colorless ACT condition holds.
  EXPECT_TRUE(colorless_probe(t, 2).found);
}

TEST(Solvability, PinwheelUnsolvable) {
  const SolvabilityResult r = decide_solvability(zoo::pinwheel());
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
}

TEST(Solvability, MajorityConsensusUnsolvable) {
  const SolvabilityResult r = decide_solvability(zoo::majority_consensus());
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
}

TEST(Solvability, LoopAgreementVerdicts) {
  EXPECT_EQ(decide_solvability(zoo::loop_agreement_filled_triangle()).verdict,
            Verdict::Solvable);
  EXPECT_EQ(decide_solvability(zoo::loop_agreement_hollow_triangle()).verdict,
            Verdict::Unsolvable);
}

TEST(Solvability, Fig3RunningExampleSolvable) {
  // Δ offers a full facet for every input facet; constant-per-facet maps
  // exist at radius 0.
  const SolvabilityResult r = decide_solvability(zoo::fig3_running_example());
  EXPECT_EQ(r.verdict, Verdict::Solvable);
}

TEST(TwoProcess, ConsensusUnsolvable) {
  const SolvabilityResult r = decide_two_process(zoo::consensus_2());
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
}

TEST(TwoProcess, ApproximateAgreementSolvable) {
  const SolvabilityResult r = decide_two_process(zoo::approximate_agreement_2(2));
  EXPECT_EQ(r.verdict, Verdict::Solvable);
}

TEST(TwoProcess, DispatchFromDecideSolvability) {
  EXPECT_EQ(decide_solvability(zoo::consensus_2()).verdict, Verdict::Unsolvable);
  EXPECT_EQ(decide_solvability(zoo::approximate_agreement_2(2)).verdict,
            Verdict::Solvable);
}

TEST(Solvability, WitnessValidatesIndependently) {
  const SolvabilityResult r = decide_solvability(zoo::subdivision_task(1));
  ASSERT_TRUE(r.has_chromatic_witness);
  const Task t = zoo::subdivision_task(1);
  // Re-derive the domain in the result's own pool and validate.
  EXPECT_TRUE(r.witness.size() > 0);
}

TEST(Solvability, CharacterizationReportPopulated) {
  const SolvabilityResult r = decide_solvability(zoo::pinwheel());
  ASSERT_NE(r.characterization, nullptr);
  EXPECT_EQ(r.characterization->splits.size(), 6u);
  EXPECT_EQ(r.characterization->output_components_after, 3u);
  EXPECT_FALSE(r.reason.empty());
}


TEST(Solvability, TwistedHourglassUnsolvable) {
  const SolvabilityResult r = decide_solvability(zoo::twisted_hourglass());
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
  // Unlike the real hourglass, no colorless solution exists either.
  EXPECT_FALSE(colorless_probe(zoo::twisted_hourglass(), 2).found);
}


TEST(Solvability, TestAndSetUnsolvable) {
  EXPECT_EQ(decide_solvability(zoo::test_and_set(3)).verdict, Verdict::Unsolvable);
  EXPECT_EQ(decide_solvability(zoo::test_and_set(2)).verdict, Verdict::Unsolvable);
}

TEST(Solvability, WeakSymmetryBreakingSolvableWithIds) {
  const SolvabilityResult r = decide_solvability(zoo::weak_symmetry_breaking(3));
  EXPECT_EQ(r.verdict, Verdict::Solvable);
  EXPECT_EQ(r.radius, 0);  // id-based decision, no communication
}


TEST(Solvability, SurfaceLoopAgreementUnsolvable) {
  // Non-contractible loops on closed surfaces: the torus loop generates
  // free H1; RP2's essential loop is 2-torsion. Both refuted.
  SolvabilityOptions options;
  options.max_radius = 1;
  EXPECT_EQ(decide_solvability(zoo::loop_agreement_torus(), options).verdict,
            Verdict::Unsolvable);
  EXPECT_EQ(
      decide_solvability(zoo::loop_agreement_projective_plane(), options).verdict,
      Verdict::Unsolvable);
}

}  // namespace
}  // namespace trichroma
