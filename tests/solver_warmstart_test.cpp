// Warm-start coverage: artifact-seeded pipelines must be observationally
// identical to cold ones. The equivalence is pinned three ways — over the
// whole catalog, over random tasks at every radius of a deepening sweep,
// and across chromatic relabelings (resume from an isomorphic twin's
// artifacts) — plus the degradation contract: a corrupted or truncated
// artifact falls back to a cold rebuild, never a wrong verdict. The
// concurrent-store test is the satellite for cross-process sharing: racing
// rename-atomic writers over one --cache-dir must leave a valid store and
// correct verdicts (it runs under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "io/report.h"
#include "io/store.h"
#include "solver/batch.h"
#include "solver/pipeline.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = testing::TempDir() + "trichroma-warm-" + tag + "-" +
                          std::to_string(++counter);
  fs::remove_all(dir);
  return dir;
}

// Same helper as tasks_fingerprint_test: a chromatically isomorphic copy in
// a fresh pool with scrambled values and insertion orders.
Task relabel(const Task& task, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Task out;
  out.pool = std::make_shared<VertexPool>();
  out.name = task.name + "-relabeled";
  out.num_processes = task.num_processes;
  std::vector<VertexId> verts = task.input.vertex_ids();
  for (VertexId v : task.output.vertex_ids()) verts.push_back(v);
  std::sort(verts.begin(), verts.end(),
            [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  std::shuffle(verts.begin(), verts.end(), rng);
  std::map<VertexId, VertexId> m;
  std::int64_t next = 1000 + static_cast<std::int64_t>(rng() % 100000);
  for (VertexId v : verts) {
    m[v] = out.pool->vertex(task.pool->color(v), next++);
  }
  const auto ms = [&m](const Simplex& s) {
    std::vector<VertexId> vs;
    for (VertexId v : s) vs.push_back(m.at(v));
    return Simplex(std::move(vs));
  };
  std::vector<Simplex> ifacets = task.input.facets();
  std::vector<Simplex> ofacets = task.output.facets();
  std::shuffle(ifacets.begin(), ifacets.end(), rng);
  std::shuffle(ofacets.begin(), ofacets.end(), rng);
  for (const Simplex& f : ifacets) out.input.add(ms(f));
  for (const Simplex& f : ofacets) out.output.add(ms(f));
  std::vector<Simplex> domain = task.delta.domain();
  std::shuffle(domain.begin(), domain.end(), rng);
  for (const Simplex& sigma : domain) {
    std::vector<Simplex> images;
    for (const Simplex& tau : task.delta.facet_images(sigma)) {
      images.push_back(ms(tau));
    }
    std::shuffle(images.begin(), images.end(), rng);
    for (const Simplex& tau : images) out.delta.add(ms(sigma), tau);
  }
  return out;
}

// The report schema's declared filter for warm-vs-cold comparisons: drop
// every line carrying the token `"cache":` (io/report.h).
std::string strip_cache_lines(const std::string& json) {
  std::string out;
  std::size_t start = 0;
  while (start < json.size()) {
    std::size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    if (line.find("\"cache\":") == std::string::npos) {
      out += line;
      out += '\n';
    }
    start = end + 1;
  }
  return out;
}

std::string redacted(const PipelineReport& report) {
  io::ReportJsonOptions json;
  json.redact_timings = true;
  return io::to_json(report, json);
}

// Forced kLadder so the schedule (part of the store key, and the statuses
// it implies) is identical at every thread count — the same pinning the
// batch driver applies.
SolvabilityOptions ladder_options(const std::string& cache_dir,
                                  int max_radius) {
  SolvabilityOptions options;
  options.schedule = PipelineSchedule::kLadder;
  options.cache_dir = cache_dir;
  options.max_radius = max_radius;
  return options;
}

// The tentpole contract over every catalog task: prime a store at radius 1,
// deepen to radius 2 against it, and demand the warm-started report be
// byte-identical (modulo the declared cache lines) to a cold radius-2 run.
TEST(WarmStart, SeededDeepenMatchesColdOverCatalog) {
  for (const zoo::CatalogEntry& entry : zoo::catalog()) {
    const std::string dir = fresh_dir(entry.name);
    const PipelineReport cold =
        run_pipeline(entry.build(), ladder_options("", 2)).report;
    run_pipeline(entry.build(), ladder_options(dir, 1));
    const PipelineReport seeded =
        run_pipeline(entry.build(), ladder_options(dir, 2)).report;
    EXPECT_TRUE(seeded.cache == "artifacts" || seeded.cache == "miss")
        << entry.name << ": " << seeded.cache;
    EXPECT_EQ(seeded.verdict, cold.verdict) << entry.name;
    EXPECT_EQ(seeded.reason, cold.reason) << entry.name;
    EXPECT_EQ(seeded.radius, cold.radius) << entry.name;
    EXPECT_EQ(strip_cache_lines(redacted(seeded)),
              strip_cache_lines(redacted(cold)))
        << entry.name;
  }
}

// The same contract over random tasks and the whole deepening sweep
// 0 -> 1 -> 2: every rung of the sweep warm-starts from the previous one's
// store state (records, a ratcheting ladder, Δ images) and must stay
// byte-identical to its cold counterpart.
class WarmStartSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WarmStartSeeds, SeededSweepMatchesColdAtEveryRadius) {
  zoo::RandomTaskParams params;
  params.seed = GetParam();
  params.num_input_facets = 1 + static_cast<int>(GetParam() % 4);
  const Task reference = zoo::random_task(params);
  ASSERT_TRUE(reference.validate().empty());

  const std::string dir = fresh_dir("sweep");
  for (int radius = 0; radius <= 2; ++radius) {
    const PipelineReport cold =
        run_pipeline(zoo::random_task(params), ladder_options("", radius))
            .report;
    const PipelineReport seeded =
        run_pipeline(zoo::random_task(params), ladder_options(dir, radius))
            .report;
    EXPECT_EQ(seeded.verdict, cold.verdict) << "radius " << radius;
    EXPECT_EQ(seeded.reason, cold.reason) << "radius " << radius;
    EXPECT_EQ(seeded.radius, cold.radius) << "radius " << radius;
    EXPECT_EQ(strip_cache_lines(redacted(seeded)),
              strip_cache_lines(redacted(cold)))
        << "radius " << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartSeeds,
                         ::testing::Range<std::uint64_t>(0, 8));

// Artifacts are stored under the canonical labeling, so a chromatically
// relabeled twin resumes from them. node_cap differs between the priming
// and the live run, which disables sibling-record replay (budgets must
// match exactly outside max_radius) — the "artifacts" outcome can only come
// from tier-B seeding, materialized under the twin's own display identity.
TEST(WarmStart, ResumesFromIsomorphicTwinArtifacts) {
  const Task original = zoo::approximate_agreement(2);
  const std::string dir = fresh_dir("twin");
  run_pipeline(original, ladder_options(dir, 1));

  const Task twin = relabel(original, 7);
  SolvabilityOptions live = ladder_options(dir, 2);
  live.node_cap = 19'000'000;  // not the priming run's cap: no record replay
  const PipelineReport cold =
      run_pipeline(relabel(original, 7), [&] {
        SolvabilityOptions o = live;
        o.cache_dir.clear();
        return o;
      }()).report;
  const PipelineReport seeded = run_pipeline(twin, live).report;
  EXPECT_EQ(seeded.cache, "artifacts");
  EXPECT_GE(seeded.cache_seeded_levels, 2);
  EXPECT_EQ(seeded.task_name, twin.name);
  EXPECT_EQ(seeded.verdict, cold.verdict);
  EXPECT_EQ(seeded.reason, cold.reason);
  EXPECT_EQ(seeded.radius, cold.radius);
  EXPECT_EQ(strip_cache_lines(redacted(seeded)),
            strip_cache_lines(redacted(cold)));
}

// Degradation contract: a checksum-valid artifact whose body is garbage (a
// crashed writer cannot produce one, but a version skew or a bit flip past
// the wrapper can) must not seed anything — the run rebuilds cold and the
// verdict is untouched. Both artifacts are replaced so neither tier-B
// input survives.
TEST(WarmStart, CorruptArtifactBodyFallsBackToColdRebuild) {
  const Task task = zoo::approximate_agreement(2);
  const std::string dir = fresh_dir("corrupt");
  run_pipeline(task, ladder_options(dir, 1));

  const io::VerdictStore store(dir);
  const TaskFingerprint fp = fingerprint_of(task);
  store.store_artifact(fp, "ladder.levels", "ladder-levels/2\nlevels=9\njunk");
  store.store_artifact(fp, "delta.images", "not a delta image table");

  SolvabilityOptions live = ladder_options(dir, 2);
  live.node_cap = 19'000'000;  // dodge record replay: force the artifact path
  const PipelineReport cold = run_pipeline(task, [&] {
    SolvabilityOptions o = live;
    o.cache_dir.clear();
    return o;
  }()).report;
  const PipelineReport seeded = run_pipeline(task, live).report;
  EXPECT_EQ(seeded.cache, "miss");
  EXPECT_EQ(seeded.cache_seeded_levels, 0);
  EXPECT_EQ(seeded.verdict, cold.verdict);
  EXPECT_EQ(strip_cache_lines(redacted(seeded)),
            strip_cache_lines(redacted(cold)));
}

// Raw on-disk truncation (a torn copy, a filled disk): the container
// checksum fails, every load is a miss, the run is cold and correct.
TEST(WarmStart, TruncatedArtifactFilesFallBackToColdRebuild) {
  const Task task = zoo::approximate_agreement(2);
  const std::string dir = fresh_dir("truncate");
  run_pipeline(task, ladder_options(dir, 1));

  std::size_t mangled = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".art") continue;
    const auto size = fs::file_size(entry.path());
    fs::resize_file(entry.path(), size / 2);
    ++mangled;
  }
  ASSERT_GE(mangled, 2u);  // ladder.levels + delta.images

  SolvabilityOptions live = ladder_options(dir, 2);
  live.node_cap = 19'000'000;
  const PipelineReport cold = run_pipeline(task, [&] {
    SolvabilityOptions o = live;
    o.cache_dir.clear();
    return o;
  }()).report;
  const PipelineReport seeded = run_pipeline(task, live).report;
  EXPECT_EQ(seeded.cache, "miss");
  EXPECT_EQ(seeded.cache_seeded_levels, 0);
  EXPECT_EQ(seeded.verdict, cold.verdict);
  EXPECT_EQ(strip_cache_lines(redacted(seeded)),
            strip_cache_lines(redacted(cold)));
}

// The cross-process sharing satellite, in-process so TSan can see it: many
// pipelines with *separate store handles* race decide-style runs over one
// cache directory — including isomorphic twins racing to publish the same
// entry, and a deepening run racing the shallow publisher it wants to
// resume from. Rename-atomic writes must leave every record and artifact
// loadable and every verdict equal to its cold reference.
TEST(WarmStart, ConcurrentPipelinesShareOneStoreSafely) {
  const std::string dir = fresh_dir("race");
  struct Job {
    Task (*build)();
    std::uint64_t relabel_seed;  // 0 = use the task as built
    int max_radius;
  };
  const std::vector<Job> jobs = {
      {+[] { return zoo::hourglass(); }, 0, 2},
      {+[] { return zoo::hourglass(); }, 11, 2},  // isomorphic twin
      {+[] { return zoo::approximate_agreement(2); }, 0, 1},
      {+[] { return zoo::approximate_agreement(2); }, 0, 2},  // deepens
      {+[] { return zoo::identity_task(); }, 0, 2},
      {+[] { return zoo::subdivision_task(0); }, 0, 2},  // identity's twin
      {+[] { return zoo::fig3_running_example(); }, 0, 2},
      {+[] { return zoo::consensus_2(); }, 0, 2},
  };

  std::vector<Verdict> expected(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Task task = jobs[i].relabel_seed == 0
                          ? jobs[i].build()
                          : relabel(jobs[i].build(), jobs[i].relabel_seed);
    expected[i] =
        run_pipeline(task, ladder_options("", jobs[i].max_radius)).report.verdict;
  }

  // Two full passes per job so later threads hit entries earlier ones
  // published mid-flight.
  std::vector<PipelineReport> got(jobs.size());
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    threads.emplace_back([&, i] {
      const Task task = jobs[i].relabel_seed == 0
                            ? jobs[i].build()
                            : relabel(jobs[i].build(), jobs[i].relabel_seed);
      const SolvabilityOptions options = ladder_options(dir, jobs[i].max_radius);
      run_pipeline(task, options);
      got[i] = run_pipeline(task, options).report;
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(got[i].verdict, expected[i]) << "job " << i;
  }

  // The store survived the race: every published record parses (the sibling
  // scan reads all of them), every task now replays as an exact hit, and
  // the stats walk sees only well-formed entries.
  const io::VerdictStore store(dir);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Task task = jobs[i].relabel_seed == 0
                          ? jobs[i].build()
                          : relabel(jobs[i].build(), jobs[i].relabel_seed);
    for (const io::SiblingVerdict& sibling :
         store.scan_siblings(fingerprint_of(task))) {
      EXPECT_FALSE(sibling.opt_digest.empty());
    }
    const PipelineReport warm =
        run_pipeline(task, ladder_options(dir, jobs[i].max_radius)).report;
    EXPECT_EQ(warm.cache, "hit") << "job " << i;
    EXPECT_EQ(warm.verdict, expected[i]) << "job " << i;
  }
  const io::VerdictStore::Stats stats = store.stats();
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.verdict_records, 0u);
  EXPECT_EQ(stats.other_files, 0u);
}

// Batch-level deepening: a radius-2 batch over a store primed at radius 1
// answers every conclusive task from sibling records or artifacts, and its
// reports match a cold radius-2 batch byte-for-byte modulo cache lines.
TEST(WarmStart, BatchDeepenWarmStartsFromShallowStore) {
  BatchOptions shallow;
  shallow.only = {"hourglass", "approx_agreement", "fig3"};
  shallow.solve.cache_dir = fresh_dir("batch-deepen");
  shallow.solve.max_radius = 1;
  run_batch(shallow);

  BatchOptions deep = shallow;
  deep.solve.max_radius = 2;
  const BatchResult warm = run_batch(deep);

  BatchOptions cold_options = deep;
  cold_options.solve.cache_dir.clear();
  const BatchResult cold = run_batch(cold_options);

  ASSERT_EQ(warm.tasks.size(), 3u);
  EXPECT_EQ(warm.cache_hits, 0);
  EXPECT_EQ(warm.cache_misses, 3);
  EXPECT_EQ(warm.cache_artifacts, 3);
  for (std::size_t i = 0; i < warm.tasks.size(); ++i) {
    EXPECT_EQ(warm.tasks[i].report.cache, "artifacts") << warm.tasks[i].name;
    EXPECT_EQ(strip_cache_lines(redacted(warm.tasks[i].report)),
              strip_cache_lines(redacted(cold.tasks[i].report)))
        << warm.tasks[i].name;
  }
}

}  // namespace
}  // namespace trichroma
