// Tests for Section 3: the canonical form T* and Theorem 3.1's structure.

#include <gtest/gtest.h>

#include "tasks/canonical.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

TEST(Canonical, Fig3RunningExampleMatchesFig4) {
  // Figure 3 → Figure 4: the green facet shared by Δ(σ) and Δ(σ') is pulled
  // apart into two distinct facets of O*.
  const Task task = zoo::fig3_running_example();
  ASSERT_TRUE(task.validate().empty());
  EXPECT_FALSE(task.is_canonical());  // the green facet has two pre-images

  const Task star = canonicalize(task);
  EXPECT_TRUE(star.validate().empty());
  EXPECT_TRUE(star.is_canonical());
  EXPECT_TRUE(star.input == task.input);

  // O had 2 facets (green, h); O* has 3: green×σ, green×σ', h×σ.
  EXPECT_EQ(task.output.count(2), 2u);
  EXPECT_EQ(star.output.count(2), 3u);
}

TEST(Canonical, ConsensusBecomesCanonical) {
  const Task task = zoo::consensus(3);
  EXPECT_FALSE(task.is_canonical());  // the all-0 output serves many inputs
  const Task star = canonicalize(task);
  EXPECT_TRUE(star.validate().empty()) << star.validate().front();
  EXPECT_TRUE(star.is_canonical());
}

TEST(Canonical, CanonicalizationIsIdempotentOnStructure) {
  const Task star = canonicalize(zoo::consensus(3));
  const Task star2 = canonicalize(star);
  EXPECT_TRUE(star2.is_canonical());
  // Same facet counts (re-tagging only).
  EXPECT_EQ(star.output.count(2), star2.output.count(2));
  EXPECT_EQ(star.output.count(0), star2.output.count(0));
}

TEST(Canonical, VertexDecomposition) {
  const Task task = zoo::fig3_running_example();
  const Task star = canonicalize(task);
  VertexPool& pool = *star.pool;
  for (VertexId v : star.output.vertex_ids()) {
    ASSERT_TRUE(is_canonical_vertex(pool, v));
    const VertexId x = canonical_input_part(pool, v);
    const VertexId y = canonical_output_part(pool, v);
    EXPECT_EQ(pool.color(x), pool.color(v));
    EXPECT_EQ(pool.color(y), pool.color(v));
    EXPECT_TRUE(task.input.contains_vertex(x));
    EXPECT_TRUE(task.output.contains_vertex(y));
  }
  for (VertexId v : task.output.vertex_ids()) {
    EXPECT_FALSE(is_canonical_vertex(pool, v));
  }
}

TEST(Canonical, ProjectingBackRecoversOriginalImages) {
  // Theorem 3.1's easy direction: dropping the echoed input from any facet
  // of Δ*(X) recovers a facet of Δ(X).
  const Task task = zoo::majority_consensus();
  const Task star = canonicalize(task);
  VertexPool& pool = *star.pool;
  star.input.for_each([&](const Simplex& x) {
    for (const Simplex& image : star.delta.facet_images(x)) {
      std::vector<VertexId> projected;
      for (VertexId v : image) projected.push_back(canonical_output_part(pool, v));
      EXPECT_TRUE(task.delta.allows(x, Simplex(std::move(projected))));
    }
  });
}

TEST(Canonical, PreimageUniquenessAtEveryDimension) {
  const Task star = canonicalize(zoo::set_agreement_32());
  // Each facet image determines its input simplex: scan all pairs.
  std::unordered_map<Simplex, Simplex, SimplexHash> owner;
  bool unique = true;
  star.input.for_each([&](const Simplex& tau) {
    for (const Simplex& rho : star.delta.facet_images(tau)) {
      auto [it, inserted] = owner.emplace(rho, tau);
      if (!inserted && !(it->second == tau)) unique = false;
    }
  });
  EXPECT_TRUE(unique);
}

TEST(Canonical, SoloImagesEchoInputs) {
  const Task task = zoo::consensus(3);
  const Task star = canonicalize(task);
  VertexPool& pool = *star.pool;
  for (VertexId x : star.input.vertex_ids()) {
    for (const Simplex& img : star.delta.facet_images(Simplex::single(x))) {
      ASSERT_EQ(img.size(), 1u);
      EXPECT_EQ(canonical_input_part(pool, img[0]), x);
    }
  }
}

}  // namespace
}  // namespace trichroma
