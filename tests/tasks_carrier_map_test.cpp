// Unit tests for CarrierMap and Task validation.

#include <gtest/gtest.h>

#include "tasks/builder.h"
#include "tasks/task.h"

namespace trichroma {
namespace {

class CarrierMapTest : public ::testing::Test {
 protected:
  std::shared_ptr<VertexPool> pool = std::make_shared<VertexPool>();
  VertexId in(Color c, std::int64_t x) {
    auto& vals = pool->values();
    return pool->vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(x)}));
  }
  VertexId out(Color c, std::int64_t x) {
    auto& vals = pool->values();
    return pool->vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(x)}));
  }
};

TEST_F(CarrierMapTest, AddAndQuery) {
  CarrierMap delta;
  const Simplex sigma{in(0, 0), in(1, 0)};
  const Simplex tau{out(0, 0), out(1, 0)};
  delta.add(sigma, tau);
  EXPECT_TRUE(delta.defined(sigma));
  EXPECT_EQ(delta.facet_images(sigma).size(), 1u);
  EXPECT_TRUE(delta.allows(sigma, tau));
  EXPECT_TRUE(delta.allows(sigma, Simplex::single(out(0, 0))));  // face
  EXPECT_FALSE(delta.allows(sigma, Simplex::single(out(0, 9))));
}

TEST_F(CarrierMapTest, AddDeduplicates) {
  CarrierMap delta;
  const Simplex sigma{in(0, 0)};
  delta.add(sigma, Simplex::single(out(0, 0)));
  delta.add(sigma, Simplex::single(out(0, 0)));
  EXPECT_EQ(delta.facet_images(sigma).size(), 1u);
}

TEST_F(CarrierMapTest, ImageComplexIsClosure) {
  CarrierMap delta;
  const Simplex sigma{in(0, 0), in(1, 0), in(2, 0)};
  const Simplex tau{out(0, 0), out(1, 0), out(2, 0)};
  delta.add(sigma, tau);
  const SimplicialComplex image = delta.image_complex(sigma);
  EXPECT_EQ(image.count(2), 1u);
  EXPECT_EQ(image.count(1), 3u);
  EXPECT_EQ(image.count(0), 3u);
}

TEST_F(CarrierMapTest, ValidateDetectsDimensionMismatch) {
  SimplicialComplex input;
  const Simplex sigma{in(0, 0), in(1, 0)};
  input.add(sigma);
  CarrierMap delta;
  delta.set(sigma, {Simplex::single(out(0, 0))});  // wrong dimension
  delta.set(Simplex::single(in(0, 0)), {Simplex::single(out(0, 0))});
  delta.set(Simplex::single(in(1, 0)), {Simplex::single(out(1, 0))});
  const auto errors = delta.validate(*pool, input);
  EXPECT_FALSE(errors.empty());
}

TEST_F(CarrierMapTest, ValidateDetectsColorMismatch) {
  SimplicialComplex input;
  const Simplex x{in(0, 0)};
  input.add(x);
  CarrierMap delta;
  delta.set(x, {Simplex::single(out(1, 0))});  // wrong color
  EXPECT_FALSE(delta.validate(*pool, input).empty());
}

TEST_F(CarrierMapTest, ValidateDetectsNonMonotone) {
  SimplicialComplex input;
  const Simplex sigma{in(0, 0), in(1, 0)};
  input.add(sigma);
  CarrierMap delta;
  delta.set(sigma, {Simplex{out(0, 0), out(1, 0)}});
  delta.set(Simplex::single(in(0, 0)), {Simplex::single(out(0, 7))});  // not a face
  delta.set(Simplex::single(in(1, 0)), {Simplex::single(out(1, 0))});
  const auto errors = delta.validate(*pool, input);
  ASSERT_FALSE(errors.empty());
  bool found_monotone = false;
  for (const auto& e : errors) {
    if (e.find("monotone") != std::string::npos) found_monotone = true;
  }
  EXPECT_TRUE(found_monotone);
}

TEST_F(CarrierMapTest, ValidateDetectsMissingImage) {
  SimplicialComplex input;
  const Simplex sigma{in(0, 0), in(1, 0)};
  input.add(sigma);
  CarrierMap delta;
  delta.set(sigma, {Simplex{out(0, 0), out(1, 0)}});
  // Vertices of σ have no image at all.
  EXPECT_FALSE(delta.validate(*pool, input).empty());
}

TEST_F(CarrierMapTest, DownwardClosureIsValidCarrierMap) {
  SimplicialComplex input;
  const Simplex sigma{in(0, 0), in(1, 0), in(2, 0)};
  const Simplex sigma2{in(0, 1), in(1, 0), in(2, 0)};
  input.add(sigma);
  input.add(sigma2);
  std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash> images;
  // The two facets' images agree on the shared {P1, P2} edge, so every
  // restriction survives the monotonicity pruning.
  images[sigma] = {Simplex{out(0, 0), out(1, 0), out(2, 0)}};
  images[sigma2] = {Simplex{out(0, 1), out(1, 0), out(2, 0)}};
  const CarrierMap delta = downward_closure(*pool, input, images);
  EXPECT_TRUE(delta.validate(*pool, input).empty());
  const Simplex shared{in(1, 0), in(2, 0)};
  EXPECT_EQ(delta.facet_images(shared).size(), 1u);
  EXPECT_EQ(delta.facet_images(Simplex::single(in(0, 0))).size(), 1u);
  EXPECT_EQ(delta.facet_images(Simplex::single(in(0, 1))).size(), 1u);
}

TEST_F(CarrierMapTest, DownwardClosurePrunesInconsistentInheritance) {
  // A face shared by two facets whose images disagree: the conflicting
  // restrictions must be pruned away, leaving a monotone (possibly empty)
  // image — here the shared vertex keeps nothing.
  SimplicialComplex input;
  const Simplex e1{in(0, 0), in(1, 0)};
  const Simplex e2{in(0, 1), in(1, 0)};
  input.add(e1);
  input.add(e2);
  std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash> images;
  images[e1] = {Simplex{out(0, 0), out(1, 0)}};
  images[e2] = {Simplex{out(0, 1), out(1, 1)}};
  const CarrierMap delta = downward_closure(*pool, input, images);
  // P1's vertex inherited (1,0) from e1 and (1,1) from e2; neither is a
  // face of the other facet's image, so both are pruned.
  EXPECT_TRUE(delta.facet_images(Simplex::single(in(1, 0))).empty());
  // Validation reports the empty image rather than non-monotonicity.
  EXPECT_FALSE(delta.validate(*pool, input).empty());
}

TEST_F(CarrierMapTest, ReachableOutputUnionsAllImages) {
  SimplicialComplex input;
  const Simplex x{in(0, 0)}, y{in(0, 1)};
  input.add(x);
  input.add(y);
  CarrierMap delta;
  delta.set(x, {Simplex::single(out(0, 0))});
  delta.set(y, {Simplex::single(out(0, 1))});
  EXPECT_EQ(delta.reachable_output(input).count(0), 2u);
}

TEST_F(CarrierMapTest, TaskValidateAcceptsWellFormed) {
  Task task;
  task.pool = pool;
  task.name = "tiny";
  task.num_processes = 2;
  const Simplex sigma{in(0, 0), in(1, 0)};
  task.input.add(sigma);
  const Simplex tau{out(0, 0), out(1, 0)};
  task.output.add(tau);
  task.delta.set(sigma, {tau});
  task.delta.set(Simplex::single(in(0, 0)), {Simplex::single(out(0, 0))});
  task.delta.set(Simplex::single(in(1, 0)), {Simplex::single(out(1, 0))});
  EXPECT_TRUE(task.validate().empty()) << task.validate().front();
}

TEST_F(CarrierMapTest, TaskValidateRejectsUnreachableOutput) {
  Task task;
  task.pool = pool;
  task.num_processes = 2;
  const Simplex sigma{in(0, 0), in(1, 0)};
  task.input.add(sigma);
  const Simplex tau{out(0, 0), out(1, 0)};
  task.output.add(tau);
  task.output.add(Simplex{out(0, 5), out(1, 5)});  // unreachable
  task.delta.set(sigma, {tau});
  task.delta.set(Simplex::single(in(0, 0)), {Simplex::single(out(0, 0))});
  task.delta.set(Simplex::single(in(1, 0)), {Simplex::single(out(1, 0))});
  EXPECT_FALSE(task.validate().empty());
}

}  // namespace
}  // namespace trichroma
