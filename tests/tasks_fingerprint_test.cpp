// Tests for the canonical chromatic-isomorphism fingerprint
// (tasks/fingerprint.h): invariance under color-respecting relabelings and
// insertion-order permutations, catalog separation, and the deduplicated
// random-task stream built on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

// Color-respecting relabeling into a fresh pool: shuffled vertex order,
// scrambled integer values, and shuffled insertion order for facets, Δ
// domain simplices and Δ images. Chromatically isomorphic to `task` by
// construction.
Task relabel(const Task& task, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Task out;
  out.pool = std::make_shared<VertexPool>();
  out.name = task.name + "-relabeled";
  out.num_processes = task.num_processes;
  std::vector<VertexId> verts = task.input.vertex_ids();
  for (VertexId v : task.output.vertex_ids()) verts.push_back(v);
  std::sort(verts.begin(), verts.end(),
            [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  std::shuffle(verts.begin(), verts.end(), rng);
  std::map<VertexId, VertexId> m;
  std::int64_t next = 1000 + static_cast<std::int64_t>(rng() % 100000);
  for (VertexId v : verts) {
    m[v] = out.pool->vertex(task.pool->color(v), next++);
  }
  const auto ms = [&m](const Simplex& s) {
    std::vector<VertexId> vs;
    for (VertexId v : s) vs.push_back(m.at(v));
    return Simplex(std::move(vs));
  };
  std::vector<Simplex> ifacets = task.input.facets();
  std::vector<Simplex> ofacets = task.output.facets();
  std::shuffle(ifacets.begin(), ifacets.end(), rng);
  std::shuffle(ofacets.begin(), ofacets.end(), rng);
  for (const Simplex& f : ifacets) out.input.add(ms(f));
  for (const Simplex& f : ofacets) out.output.add(ms(f));
  std::vector<Simplex> domain = task.delta.domain();
  std::shuffle(domain.begin(), domain.end(), rng);
  for (const Simplex& sigma : domain) {
    std::vector<Simplex> images;
    for (const Simplex& tau : task.delta.facet_images(sigma)) {
      images.push_back(ms(tau));
    }
    std::shuffle(images.begin(), images.end(), rng);
    for (const Simplex& tau : images) out.delta.add(ms(sigma), tau);
  }
  return out;
}

// Identity on vertices (shared pool), but every container re-populated in a
// shuffled insertion order: isolates I/O-order invariance from relabeling.
Task reinsert(const Task& task, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Task out;
  out.pool = task.pool;
  out.name = task.name;
  out.num_processes = task.num_processes;
  std::vector<Simplex> ifacets = task.input.facets();
  std::vector<Simplex> ofacets = task.output.facets();
  std::shuffle(ifacets.begin(), ifacets.end(), rng);
  std::shuffle(ofacets.begin(), ofacets.end(), rng);
  for (const Simplex& f : ifacets) out.input.add(f);
  for (const Simplex& f : ofacets) out.output.add(f);
  std::vector<Simplex> domain = task.delta.domain();
  std::shuffle(domain.begin(), domain.end(), rng);
  for (const Simplex& sigma : domain) {
    std::vector<Simplex> images = task.delta.facet_images(sigma);
    std::shuffle(images.begin(), images.end(), rng);
    for (const Simplex& tau : images) out.delta.add(sigma, tau);
  }
  return out;
}

TEST(Fingerprint, DeterministicAcrossCalls) {
  const Task task = zoo::hourglass();
  EXPECT_EQ(fingerprint_of(task).hex(), fingerprint_of(task).hex());
}

TEST(Fingerprint, Sha256KnownVectors) {
  // FIPS 180-4 test vectors.
  const auto hex = [](const std::array<std::uint8_t, 32>& digest) {
    TaskFingerprint fp;
    fp.bytes = digest;
    return fp.hex();
  };
  EXPECT_EQ(
      hex(sha256("", 0)),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      hex(sha256("abc", 3)),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Fingerprint, LabelingIsAPermutationWithInverse) {
  const Task task = zoo::pinwheel();
  const FingerprintResult r = fingerprint_task(task);
  EXPECT_EQ(r.labeling.order.size(), r.stats.vertices);
  std::set<VertexId> distinct(r.labeling.order.begin(),
                              r.labeling.order.end());
  EXPECT_EQ(distinct.size(), r.labeling.order.size());
  for (std::size_t i = 0; i < r.labeling.order.size(); ++i) {
    EXPECT_EQ(r.labeling.index_of(r.labeling.order[i]),
              static_cast<std::ptrdiff_t>(i));
  }
}

// The core property: every catalog task keeps its fingerprint under random
// chromatic isomorphisms (fresh pool, scrambled values, shuffled insertion)
// and under pure insertion-order permutations.
TEST(Fingerprint, CatalogInvariantUnderChromaticIsomorphism) {
  for (const zoo::CatalogEntry& entry : zoo::catalog()) {
    const Task task = entry.build();
    const std::string base = fingerprint_of(task).hex();
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      EXPECT_EQ(fingerprint_of(relabel(task, seed * 77 + 5)).hex(), base)
          << entry.name << " relabel seed " << seed;
      EXPECT_EQ(fingerprint_of(reinsert(task, seed * 131 + 17)).hex(), base)
          << entry.name << " reinsert seed " << seed;
    }
  }
}

// The catalog separates into exactly 20 fingerprint classes: `identity` and
// `subdivision0` (the radius-0 subdivision task IS the identity task up to
// chromatic isomorphism) collide by design, and nothing else does. The
// fingerprint ignores task names and concrete values, so this is the right
// answer, not a weakness — the batch driver's dedup pre-pass depends on it.
TEST(Fingerprint, CatalogCollapsesExactlyTheIsomorphicPair) {
  std::map<std::string, std::vector<std::string>> classes;
  for (const zoo::CatalogEntry& entry : zoo::catalog()) {
    classes[fingerprint_of(entry.build()).hex()].push_back(entry.name);
  }
  EXPECT_EQ(classes.size(), zoo::catalog().size() - 1);
  for (const auto& [hex, names] : classes) {
    if (names.size() == 1) continue;
    EXPECT_EQ(names, (std::vector<std::string>{"identity", "subdivision0"}))
        << "unexpected fingerprint collision on " << hex;
  }
}

TEST(Fingerprint, DistinguishesNearMisses) {
  // Same shape family, different Δ: the hollow and filled loop tasks.
  EXPECT_NE(fingerprint_of(zoo::loop_agreement_hollow_triangle()).hex(),
            fingerprint_of(zoo::loop_agreement_filled_triangle()).hex());
  // Consensus for 3 vs the 2-process variant.
  EXPECT_NE(fingerprint_of(zoo::consensus(3)).hex(),
            fingerprint_of(zoo::consensus_2()).hex());
}

TEST(Fingerprint, StatsPopulated) {
  const FingerprintResult r = fingerprint_task(zoo::hourglass());
  EXPECT_GT(r.stats.vertices, 0u);
  EXPECT_GE(r.stats.leaves, 1u);
  EXPECT_GT(r.stats.refinement_rounds, 0u);
}

// renaming5 is vertex-transitive enough to have many automorphisms; the
// search must still come back with one canonical answer.
TEST(Fingerprint, HighAutomorphismTaskIsStable) {
  const Task task = zoo::renaming(5);
  const std::string base = fingerprint_of(task).hex();
  EXPECT_EQ(fingerprint_of(relabel(task, 4242)).hex(), base);
}

TEST(RandomTaskStream, SkipsDuplicateFingerprints) {
  // A one-value universe admits essentially one task per input shape: the
  // stream must detect the repeats, bump the metric, and still terminate
  // via the attempt cap.
  obs::Counter& skips =
      obs::MetricsRegistry::global().counter("tasks.random.dedup_skips");
  const std::uint64_t before = skips.value();
  zoo::RandomTaskParams params;
  params.num_input_facets = 1;
  params.output_values_per_color = 1;
  params.seed = 7;
  zoo::RandomTaskStream stream(params, /*max_attempts=*/4);
  const Task first = stream.next();
  EXPECT_TRUE(first.validate().empty());
  EXPECT_EQ(stream.emitted(), 1u);
  EXPECT_EQ(stream.skipped(), 0u);
  const Task second = stream.next();  // exhausts the family, returns a dup
  EXPECT_TRUE(second.validate().empty());
  EXPECT_EQ(stream.emitted(), 1u);
  EXPECT_GE(stream.skipped(), 3u);  // max_attempts - 1 consecutive dups
  EXPECT_GE(skips.value() - before, stream.skipped());
}

TEST(RandomTaskStream, EmitsDistinctTasksAcrossSeeds) {
  zoo::RandomTaskParams params;
  params.seed = 11;
  zoo::RandomTaskStream stream(params);
  std::set<std::string> seen;
  for (int i = 0; i < 5; ++i) {
    seen.insert(fingerprint_of(stream.next()).hex());
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(stream.emitted(), 5u);
}

}  // namespace
}  // namespace trichroma
