// Structural tests for the task zoo: every constructor yields a valid
// carrier map, and the paper tasks match their figures vertex-for-vertex.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "tasks/zoo.h"
#include "topology/graph.h"
#include "topology/homology.h"

namespace trichroma {
namespace {

TEST(Zoo, AllTasksValidate) {
  const std::vector<Task> tasks = {
      zoo::consensus(3),
      zoo::consensus(2),
      zoo::set_agreement_32(),
      zoo::identity_task(),
      zoo::renaming(5),
      zoo::renaming(3),
      zoo::approximate_agreement(2),
      zoo::approximate_agreement_2(2),
      zoo::subdivision_task(0),
      zoo::subdivision_task(1),
      zoo::majority_consensus(),
      zoo::hourglass(),
      zoo::pinwheel(),
      zoo::fig3_running_example(),
      zoo::loop_agreement_hollow_triangle(),
      zoo::loop_agreement_filled_triangle(),
  };
  for (const Task& t : tasks) {
    const auto errors = t.validate();
    EXPECT_TRUE(errors.empty()) << t.name << ": " << errors.front();
  }
}

TEST(Zoo, ConsensusShape) {
  const Task t = zoo::consensus(3);
  EXPECT_EQ(t.input.count(0), 6u);   // 3 processes x 2 values
  EXPECT_EQ(t.input.count(2), 8u);   // all binary assignments
  EXPECT_EQ(t.output.count(2), 2u);  // all-0 and all-1
  // Mixed-input edge images are disconnected — the classic obstruction.
  VertexPool& pool = *t.pool;
  auto iv = [&](Color c, std::int64_t v) {
    auto& vals = pool.values();
    return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(v)}));
  };
  const SimplicialComplex mixed =
      t.delta.image_complex(Simplex{iv(0, 0), iv(1, 1)});
  EXPECT_EQ(component_count(mixed), 2u);
}

TEST(Zoo, SetAgreement32Shape) {
  const Task t = zoo::set_agreement_32();
  EXPECT_EQ(t.input.count(2), 1u);   // fixed inputs: a single facet
  EXPECT_EQ(t.output.count(0), 9u);  // (color, value) for 3 x 3
  // 27 assignments minus the 6 with three distinct values.
  EXPECT_EQ(t.output.count(2), 21u);
  const Simplex sigma = t.input.facets().front();
  EXPECT_EQ(t.delta.facet_images(sigma).size(), 21u);
}

TEST(Zoo, MajorityConsensusMatchesFig1) {
  const Task t = zoo::majority_consensus();
  const Simplex sigma = t.input.facets().front();
  for (const Simplex& out : t.delta.facet_images(sigma)) {
    // Count decided zeros/ones: all-same or strictly more zeros.
    int zeros = 0, ones = 0;
    for (VertexId v : out) {
      const auto val = t.pool->values().elements(t.pool->value(v))[1];
      (t.pool->values().as_int(val) == 0 ? zeros : ones)++;
    }
    EXPECT_TRUE(zeros == 0 || ones == 0 || zeros > ones);
  }
}

TEST(Zoo, HourglassMatchesFig2) {
  const Task t = zoo::hourglass();
  EXPECT_EQ(t.input.count(2), 1u);
  EXPECT_EQ(t.output.count(0), 8u);
  EXPECT_EQ(t.output.count(2), 8u);
  EXPECT_TRUE(t.is_canonical());
  EXPECT_FALSE(t.is_link_connected());

  // The unique LAP is P0's output-1 vertex y, with link components
  // {a1, a2} and {s1, s2}.
  VertexPool& pool = *t.pool;
  auto ov = [&](Color c, std::int64_t v) {
    auto& vals = pool.values();
    return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(v)}));
  };
  const VertexId y = ov(0, 1);
  const Simplex sigma = t.input.facets().front();
  const SimplicialComplex image = t.delta.image_complex(sigma);
  const auto comps = connected_components(image.link(y));
  ASSERT_EQ(comps.size(), 2u);
  // Components sorted by smallest vertex id: solo vertices were interned
  // before the output-1 vertices.
  EXPECT_EQ(comps[0], (std::vector<VertexId>{ov(1, 0), ov(2, 0)}));
  EXPECT_EQ(comps[1], (std::vector<VertexId>{ov(1, 1), ov(2, 1)}));
  // No other vertex is a LAP.
  for (VertexId v : image.vertex_ids()) {
    if (v == y) continue;
    EXPECT_TRUE(is_connected(image.link(v))) << pool.name(v);
  }
  // The output complex has one GF(2) hole: the hourglass waist.
  EXPECT_EQ(betti_numbers(t.output).b1, 1);
}

TEST(Zoo, PinwheelMatchesFig8) {
  const Task t = zoo::pinwheel();
  EXPECT_EQ(t.output.count(2), 9u);  // three blades of three triangles
  EXPECT_EQ(t.output.count(0), 9u);
  EXPECT_TRUE(t.is_canonical());

  // Exactly six LAPs, each with a two-component link; the blade adjacency
  // is 3-fold symmetric.
  VertexPool& pool = *t.pool;
  const Simplex sigma = t.input.facets().front();
  const SimplicialComplex image = t.delta.image_complex(sigma);
  int laps = 0;
  for (VertexId v : image.vertex_ids()) {
    const auto comps = connected_components(image.link(v));
    if (comps.size() >= 2) {
      ++laps;
      EXPECT_EQ(comps.size(), 2u) << pool.name(v);
    }
  }
  EXPECT_EQ(laps, 6);
  // Pre-split the complex is connected.
  EXPECT_TRUE(is_connected(t.output));
}

TEST(Zoo, PinwheelKeptVectorsAreRotationClosed) {
  const auto kept = zoo::pinwheel_kept_vectors();
  ASSERT_EQ(kept.size(), 9u);
  auto rotate = [](std::array<int, 3> v) {
    auto bump = [](int x) { return x % 3 + 1; };
    return std::array<int, 3>{bump(v[2]), bump(v[0]), bump(v[1])};
  };
  for (const auto& v : kept) {
    const auto r = rotate(v);
    EXPECT_NE(std::find(kept.begin(), kept.end(), r), kept.end());
  }
}

TEST(Zoo, SubdivisionTaskShape) {
  const Task t0 = zoo::subdivision_task(0);
  EXPECT_EQ(t0.output.count(2), 1u);
  const Task t1 = zoo::subdivision_task(1);
  EXPECT_EQ(t1.output.count(2), 13u);
  EXPECT_TRUE(t1.is_canonical());
  const Task t2 = zoo::subdivision_task(2);
  EXPECT_EQ(t2.output.count(2), 169u);
}

TEST(Zoo, ApproximateAgreementShape) {
  const Task t = zoo::approximate_agreement(2);
  // Inputs 0/2 per process; outputs 0..2 within distance 1 and the input
  // range; solo executions decide their own input.
  VertexPool& pool = *t.pool;
  for (VertexId x : t.input.vertex_ids()) {
    const auto images = t.delta.facet_images(Simplex::single(x));
    ASSERT_EQ(images.size(), 1u);
    EXPECT_EQ(pool.values().as_int(pool.values().elements(pool.value(images[0][0]))[1]),
              pool.values().as_int(pool.values().elements(pool.value(x))[1]));
  }
}

TEST(Zoo, LoopAgreementShapes) {
  const Task hollow = zoo::loop_agreement_hollow_triangle();
  EXPECT_EQ(hollow.input.count(0), 9u);  // 3 colors x 3 indices
  EXPECT_EQ(hollow.input.count(2), 27u);
  const Task filled = zoo::loop_agreement_filled_triangle();
  EXPECT_TRUE(filled.input == hollow.input || filled.input.count(2) == 27u);
}

TEST(Zoo, RandomTasksValidate) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    zoo::RandomTaskParams params;
    params.seed = seed;
    params.num_input_facets = 1 + static_cast<int>(seed % 4);
    const Task t = zoo::random_task(params);
    const auto errors = t.validate();
    EXPECT_TRUE(errors.empty()) << t.name << ": " << errors.front();
  }
}

TEST(Zoo, TwoProcessTasksValidate) {
  const Task c2 = zoo::consensus_2();
  EXPECT_EQ(c2.num_processes, 2);
  EXPECT_TRUE(c2.validate().empty());
  const Task a2 = zoo::approximate_agreement_2(2);
  EXPECT_TRUE(a2.validate().empty());
}


TEST(Zoo, TestAndSetShape) {
  const Task t = zoo::test_and_set(3);
  EXPECT_TRUE(t.validate().empty());
  // Exactly-one-winner: 3 facets for full participation.
  EXPECT_EQ(t.delta.facet_images(t.input.facets().front()).size(), 3u);
  const Task t2 = zoo::test_and_set(2);
  EXPECT_TRUE(t2.validate().empty());
}

TEST(Zoo, WeakSymmetryBreakingShape) {
  const Task t = zoo::weak_symmetry_breaking(3);
  EXPECT_TRUE(t.validate().empty());
  // 2^3 - 2 all-distinct-forbidden = 6 full facets.
  EXPECT_EQ(t.delta.facet_images(t.input.facets().front()).size(), 6u);
}


TEST(Zoo, SurfaceLoopAgreementShapes) {
  const Task torus = zoo::loop_agreement_torus();
  EXPECT_TRUE(torus.validate().empty()) << torus.validate().front();
  const Task rp2 = zoo::loop_agreement_projective_plane();
  EXPECT_TRUE(rp2.validate().empty()) << rp2.validate().front();
}

}  // namespace
}  // namespace trichroma
