// Unit tests for the compiled (flat CSR + bitmask-link) complex snapshot.
// The equivalence *property* sweep against the hash-set form across the zoo
// lives in property_test.cpp; this file pins the substrate's own contracts:
// local numbering, lookup tables, incidence rows, link components, facets,
// the builder's closure expansion, and the degenerate shapes.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "topology/compiled.h"
#include "topology/graph.h"
#include "topology/subdivision.h"
#include "topology/vertex.h"

namespace trichroma {
namespace {

class CompiledTest : public ::testing::Test {
 protected:
  VertexPool pool;

  SimplicialComplex triangle() {
    SimplicialComplex k;
    k.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
    return k;
  }
};

TEST_F(CompiledTest, LocalsAreSortedByRawIdAndRoundTrip) {
  const SimplicialComplex k = triangle();
  const auto c = CompiledComplex::compile(k);
  const std::vector<VertexId> ids = k.vertex_ids();  // sorted by raw id
  ASSERT_EQ(c->num_vertices(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto li = static_cast<CompiledComplex::Local>(i);
    EXPECT_EQ(c->vertex(li), ids[i]);
    EXPECT_EQ(c->local(ids[i]), li);
    EXPECT_TRUE(c->contains_vertex(ids[i]));
  }
  // A pool vertex outside the complex resolves to kAbsent.
  const VertexId stranger = pool.vertex(0, 99);
  EXPECT_EQ(c->local(stranger), CompiledComplex::kAbsent);
  EXPECT_FALSE(c->contains_vertex(stranger));
}

TEST_F(CompiledTest, EdgeTableIsSortedWithBinaryLookup) {
  const auto c = CompiledComplex::compile(triangle());
  ASSERT_EQ(c->num_edges(), 3u);
  for (std::size_t e = 0; e < c->num_edges(); ++e) {
    const auto [u, v] = c->edge(e);
    EXPECT_LT(u, v);
    EXPECT_EQ(c->edge_index(u, v), static_cast<std::ptrdiff_t>(e));
    EXPECT_TRUE(c->contains_edge(u, v));
    if (e > 0) {
      // Packed keys ascend: the table is sorted.
      const auto [pu, pv] = c->edge(e - 1);
      EXPECT_TRUE(pu < u || (pu == u && pv < v));
    }
  }
}

TEST_F(CompiledTest, IncidenceRowsOfASingleTriangle) {
  const auto c = CompiledComplex::compile(triangle());
  ASSERT_EQ(c->num_triangles(), 1u);
  for (CompiledComplex::Local v = 0; v < 3; ++v) {
    EXPECT_EQ(c->degree(v), 2u);
    EXPECT_EQ(c->edges_of_count(v), 2u);
    EXPECT_EQ(c->triangles_of_count(v), 1u);
    EXPECT_EQ(c->star_count(v, 0), 1u);
    EXPECT_EQ(c->star_count(v, 1), 2u);
    EXPECT_EQ(c->star_count(v, 2), 1u);
    // lk(v) is the opposite edge: one component, connected.
    EXPECT_FALSE(c->link_empty(v));
    EXPECT_EQ(c->link_component_count(v), 1u);
    EXPECT_TRUE(c->link_connected(v));
  }
}

TEST_F(CompiledTest, LinkComponentsMatchHashSetLinkOnBowtie) {
  // Two triangles pinched at a shared vertex w: lk(w) has two components.
  const VertexId w = pool.vertex(0, 0);
  const VertexId a1 = pool.vertex(1, 1), a2 = pool.vertex(2, 2);
  const VertexId b1 = pool.vertex(1, 3), b2 = pool.vertex(2, 4);
  SimplicialComplex k;
  k.add(Simplex{w, a1, a2});
  k.add(Simplex{w, b1, b2});
  const auto c = CompiledComplex::compile(k);
  const CompiledComplex::Local lw = c->local(w);
  ASSERT_NE(lw, CompiledComplex::kAbsent);
  EXPECT_EQ(c->link_component_count(lw), 2u);
  EXPECT_FALSE(c->link_connected(lw));
  EXPECT_EQ(c->link_components(lw), connected_components(k.link(w)));
  // The pinch point does not disconnect the 1-skeleton.
  EXPECT_EQ(c->component_count(), 1u);
}

TEST_F(CompiledTest, IsolatedVertexAndDisconnectedPieces) {
  SimplicialComplex k;
  const VertexId lone = pool.vertex(0, 7);
  k.add(Simplex::single(lone));
  k.add(Simplex{pool.vertex(1, 1), pool.vertex(2, 2)});
  const auto c = CompiledComplex::compile(k);
  EXPECT_EQ(c->component_count(), 2u);
  const CompiledComplex::Local ll = c->local(lone);
  EXPECT_TRUE(c->link_empty(ll));
  EXPECT_EQ(c->link_component_count(ll), 0u);
  EXPECT_FALSE(c->link_connected(ll));
  EXPECT_EQ(c->facets(), k.facets());
}

TEST_F(CompiledTest, FacetsMatchAcrossMixedDimensions) {
  // A triangle with a dangling edge and a dangling vertex: facets must be
  // exactly the maximal simplices, in sorted order.
  SimplicialComplex k = triangle();
  k.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 5)});
  k.add(Simplex::single(pool.vertex(2, 6)));
  const auto c = CompiledComplex::compile(k);
  EXPECT_EQ(c->facets(), k.facets());
  EXPECT_EQ(c->dimension(), k.dimension());
  for (int d = 0; d <= k.dimension(); ++d) EXPECT_EQ(c->count(d), k.count(d));
  EXPECT_EQ(c->total_count(), k.total_count());
}

TEST_F(CompiledTest, ContainsAgreesWithSourceOnEveryStoredSimplex) {
  const SubdividedComplex sub = chromatic_subdivision(pool, triangle(), 1);
  const auto c = CompiledComplex::compile(sub.complex);
  sub.complex.for_each(
      [&](const Simplex& s) { EXPECT_TRUE(c->contains(s)) << s.size(); });
  // Simplices over foreign vertices are rejected, not mis-resolved.
  EXPECT_FALSE(c->contains(Simplex{pool.vertex(0, 0), pool.vertex(1, 1)}));
}

TEST_F(CompiledTest, BuilderAddExpandsClosureLikeComplexAdd) {
  // Streaming facets through Builder::add must equal compile() of the
  // closure-completed hash-set form.
  const VertexId a = pool.vertex(0, 0), b = pool.vertex(1, 1),
                 c0 = pool.vertex(2, 2), d = pool.vertex(2, 3);
  CompiledComplex::Builder builder;
  builder.add(Simplex{a, b, c0});
  builder.add(Simplex{a, b, d});
  builder.add(Simplex{a, b, c0});  // duplicates are fine
  const auto built = builder.finish();

  SimplicialComplex k;
  k.add(Simplex{a, b, c0});
  k.add(Simplex{a, b, d});
  built->debug_verify_against(k);
  EXPECT_EQ(built->num_vertices(), 4u);
  EXPECT_EQ(built->num_edges(), 5u);
  EXPECT_EQ(built->num_triangles(), 2u);
  EXPECT_EQ(built->facets(), k.facets());
}

TEST_F(CompiledTest, DimensionThreeCellsAreStoredAndQueryable) {
  // A tetrahedron (4-process shape): dim-3 cells land in the flat tables.
  SimplicialComplex k;
  const Simplex tet{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2),
                    pool.vertex(3, 3)};
  k.add(tet);
  const auto c = CompiledComplex::compile(k);
  EXPECT_EQ(c->dimension(), 3);
  EXPECT_EQ(c->count(3), 1u);
  EXPECT_TRUE(c->contains(tet));
  const CompiledComplex::Local* flat = c->cells_flat(3);
  ASSERT_NE(flat, nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c->vertex(flat[i]), tet[static_cast<std::size_t>(i)]);
  EXPECT_EQ(c->facets(), k.facets());
}

TEST_F(CompiledTest, EmptyComplexCompiles) {
  const auto c = CompiledComplex::compile(SimplicialComplex{});
  EXPECT_EQ(c->num_vertices(), 0u);
  EXPECT_EQ(c->num_edges(), 0u);
  EXPECT_EQ(c->dimension(), -1);
  EXPECT_EQ(c->component_count(), 0u);
  EXPECT_TRUE(c->facets().empty());
}

TEST_F(CompiledTest, SubdivisionCarriesACompiledSnapshot) {
  // subdivide_once emits into the builder as it streams facets; the cached
  // snapshot must be the exact compiled form of the hash-set complex, and
  // compiled_view() must hand it out without recompiling.
  const SubdividedComplex sub = chromatic_subdivision(pool, triangle(), 2);
  ASSERT_NE(sub.compiled, nullptr);
  sub.compiled->debug_verify_against(sub.complex);
  EXPECT_EQ(sub.compiled_view().get(), sub.compiled.get());
  EXPECT_EQ(sub.compiled->count(2), sub.complex.count(2));
  EXPECT_EQ(sub.compiled->count(2), 169u);  // 13^2 facets of Ch^2(σ²)
}

}  // namespace
}  // namespace trichroma
