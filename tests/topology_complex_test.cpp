// Unit tests for Simplex and SimplicialComplex.

#include <gtest/gtest.h>

#include "topology/chromatic.h"
#include "topology/complex.h"
#include "topology/simplex.h"

namespace trichroma {
namespace {

class ComplexTest : public ::testing::Test {
 protected:
  VertexPool pool;
  VertexId v(Color c, std::int64_t x) { return pool.vertex(c, x); }
};

TEST_F(ComplexTest, SimplexNormalizesSortedUnique) {
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  const Simplex s{c, a, b, a};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dim(), 2);
  EXPECT_TRUE(s.contains(a));
  EXPECT_EQ(s, (Simplex{a, b, c}));
}

TEST_F(ComplexTest, SimplexFacesEnumeration) {
  const Simplex s{v(0, 0), v(1, 0), v(2, 0)};
  EXPECT_EQ(s.faces().size(), 7u);           // 2^3 - 1
  EXPECT_EQ(s.boundary_faces().size(), 3u);  // codimension-1
  for (const Simplex& f : s.boundary_faces()) EXPECT_EQ(f.dim(), 1);
}

TEST_F(ComplexTest, SimplexSetOperations) {
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  const Simplex ab{a, b};
  EXPECT_EQ(ab.with(c), (Simplex{a, b, c}));
  EXPECT_EQ(ab.without(b), Simplex::single(a));
  EXPECT_EQ((Simplex{a, b}.unite(Simplex{b, c})), (Simplex{a, b, c}));
  EXPECT_EQ((Simplex{a, b}.intersect(Simplex{b, c})), Simplex::single(b));
  EXPECT_TRUE((Simplex{a, b, c}).contains_all(ab));
  EXPECT_FALSE(ab.contains_all(Simplex{a, c}));
}

TEST_F(ComplexTest, AddClosesUnderFaces) {
  SimplicialComplex k;
  k.add(Simplex{v(0, 0), v(1, 0), v(2, 0)});
  EXPECT_EQ(k.count(2), 1u);
  EXPECT_EQ(k.count(1), 3u);
  EXPECT_EQ(k.count(0), 3u);
  EXPECT_EQ(k.total_count(), 7u);
  EXPECT_EQ(k.dimension(), 2);
  EXPECT_TRUE(k.is_pure());
  EXPECT_EQ(k.euler_characteristic(), 1);
}

TEST_F(ComplexTest, FacetsAreMaximalSimplices) {
  SimplicialComplex k;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0), d = v(0, 1);
  k.add(Simplex{a, b, c});
  k.add(Simplex{b, d});  // pendant edge
  const auto facets = k.facets();
  ASSERT_EQ(facets.size(), 2u);
  EXPECT_FALSE(k.is_pure());
}

TEST_F(ComplexTest, RemoveWithCofacesKeepsClosure) {
  SimplicialComplex k;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  k.add(Simplex{a, b, c});
  k.remove_with_cofaces(Simplex{a, b});
  EXPECT_FALSE(k.contains(Simplex{a, b}));
  EXPECT_FALSE(k.contains(Simplex{a, b, c}));
  EXPECT_TRUE(k.contains(Simplex{a, c}));
  EXPECT_TRUE(k.contains(Simplex::single(a)));
  EXPECT_EQ(k.dimension(), 1);
}

TEST_F(ComplexTest, LinkOfInteriorVertex) {
  SimplicialComplex k;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0), d = v(1, 1);
  k.add(Simplex{a, b, c});
  k.add(Simplex{a, d, c});
  const SimplicialComplex lk = k.link(a);
  EXPECT_TRUE(lk.contains(Simplex{b, c}));
  EXPECT_TRUE(lk.contains(Simplex{d, c}));
  EXPECT_FALSE(lk.contains_vertex(a));
  EXPECT_EQ(lk.count(1), 2u);
}

TEST_F(ComplexTest, StarContainsCofacesAndTheirFaces) {
  SimplicialComplex k;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  k.add(Simplex{a, b, c});
  const SimplicialComplex st = k.star(a);
  EXPECT_TRUE(st.contains(Simplex{a, b, c}));
  EXPECT_TRUE(st.contains(Simplex{b, c}));  // closure of the triangle
}

TEST_F(ComplexTest, SkeletonTruncatesDimension) {
  SimplicialComplex k;
  k.add(Simplex{v(0, 0), v(1, 0), v(2, 0)});
  const SimplicialComplex sk = k.skeleton(1);
  EXPECT_EQ(sk.dimension(), 1);
  EXPECT_EQ(sk.count(1), 3u);
  EXPECT_EQ(sk.count(2), 0u);
}

TEST_F(ComplexTest, InducedSubcomplex) {
  SimplicialComplex k;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  k.add(Simplex{a, b, c});
  std::unordered_set<VertexId, VertexIdHash> allowed{a, b};
  const SimplicialComplex sub = k.induced(allowed);
  EXPECT_TRUE(sub.contains(Simplex{a, b}));
  EXPECT_FALSE(sub.contains_vertex(c));
}

TEST_F(ComplexTest, SubcomplexAndEquality) {
  SimplicialComplex k1, k2;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  k1.add(Simplex{a, b});
  k2.add(Simplex{a, b, c});
  EXPECT_TRUE(k1.subcomplex_of(k2));
  EXPECT_FALSE(k2.subcomplex_of(k1));
  EXPECT_FALSE(k1 == k2);
  SimplicialComplex k3;
  k3.add(Simplex{a, b, c});
  EXPECT_TRUE(k2 == k3);
}

TEST_F(ComplexTest, ChromaticChecks) {
  SimplicialComplex k;
  const VertexId a = v(0, 0), b = v(1, 0), c = v(2, 0);
  k.add(Simplex{a, b, c});
  EXPECT_TRUE(is_chromatic_complex(pool, k));
  EXPECT_TRUE(is_properly_colored(pool, k, 3));
  SimplicialComplex bad;
  bad.add(Simplex{a, v(0, 1)});  // two color-0 vertices in one simplex
  EXPECT_FALSE(is_chromatic_complex(pool, bad));
}

TEST_F(ComplexTest, VertexMapSimplicialAndChromatic) {
  SimplicialComplex dom, cod;
  const VertexId a = v(0, 0), b = v(1, 0);
  const VertexId x = v(0, 9), y = v(1, 9);
  dom.add(Simplex{a, b});
  cod.add(Simplex{x, y});
  VertexMap f;
  f.set(a, x);
  f.set(b, y);
  EXPECT_TRUE(f.is_simplicial(dom, cod));
  EXPECT_TRUE(f.is_color_preserving(pool, dom));
  VertexMap g;
  g.set(a, y);
  g.set(b, x);
  EXPECT_FALSE(g.is_color_preserving(pool, dom));
}

TEST_F(ComplexTest, EulerCharacteristicOfAnnulusIsZero) {
  // A hexagonal annulus band: outer cycle o0..o2, inner cycle i0..i2,
  // alternating triangles.
  SimplicialComplex k;
  const VertexId o0 = v(0, 0), o1 = v(1, 0), o2 = v(2, 0);
  const VertexId i0 = v(0, 1), i1 = v(1, 1), i2 = v(2, 1);
  k.add(Simplex{o0, o1, i2});
  k.add(Simplex{o1, i2, i0});
  k.add(Simplex{o1, o2, i0});
  k.add(Simplex{o2, i0, i1});
  k.add(Simplex{o2, o0, i1});
  k.add(Simplex{o0, i1, i2});
  EXPECT_EQ(k.euler_characteristic(), 0);
}

}  // namespace
}  // namespace trichroma
