// Unit tests for graph-level topology: components, paths, links.

#include <gtest/gtest.h>

#include "topology/graph.h"

namespace trichroma {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  VertexPool pool;
  VertexId v(std::int64_t x) { return pool.vertex(kNoColor, x); }
};

TEST_F(GraphTest, ComponentsOfDisconnectedGraph) {
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1)});
  k.add(Simplex{v(2), v(3)});
  k.add(Simplex::single(v(4)));  // isolated vertex
  const auto comps = connected_components(k);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(component_count(k), 3u);
  EXPECT_FALSE(is_connected(k));
  EXPECT_TRUE(same_component(k, v(0), v(1)));
  EXPECT_FALSE(same_component(k, v(0), v(2)));
}

TEST_F(GraphTest, ConnectedThroughTriangles) {
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1), v(2)});
  k.add(Simplex{v(2), v(3)});
  EXPECT_TRUE(is_connected(k));
}

TEST_F(GraphTest, PathDistance) {
  SimplicialComplex k;
  for (int i = 0; i < 5; ++i) k.add(Simplex{v(i), v(i + 1)});
  EXPECT_EQ(path_distance(k, v(0), v(5)), 5u);
  EXPECT_EQ(path_distance(k, v(2), v(2)), 0u);
  k.add(Simplex::single(v(9)));
  EXPECT_FALSE(path_distance(k, v(0), v(9)).has_value());
}

TEST_F(GraphTest, LexMinShortestPathPrefersSmallIds) {
  // Two shortest 0 → 3 paths: 0-1-3 and 0-2-3; lexicographically 0-1-3 wins.
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1)});
  k.add(Simplex{v(1), v(3)});
  k.add(Simplex{v(0), v(2)});
  k.add(Simplex{v(2), v(3)});
  const auto path = lex_min_shortest_path(k, v(0), v(3));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<VertexId>{v(0), v(1), v(3)}));
}

TEST_F(GraphTest, LexMinShortestPathIsShortest) {
  // A long detour must not be chosen even if lexicographically tempting.
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1)});
  k.add(Simplex{v(1), v(2)});
  k.add(Simplex{v(2), v(3)});
  k.add(Simplex{v(0), v(5)});
  k.add(Simplex{v(5), v(3)});
  const auto path = lex_min_shortest_path(k, v(0), v(3));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // 0-5-3
}

TEST_F(GraphTest, SymmetricPathAgreesFromBothEnds) {
  SimplicialComplex k;
  // A 6-cycle where the two directions see different greedy choices.
  for (int i = 0; i < 6; ++i) k.add(Simplex{v(i), v((i + 1) % 6)});
  k.add(Simplex{v(0), v(3)});  // chord: two distinct shortest 1→4 routes
  const auto p = lex_min_shortest_path_symmetric(k, v(1), v(4));
  const auto q = lex_min_shortest_path_symmetric(k, v(4), v(1));
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(q.has_value());
  std::vector<VertexId> q_rev(q->rbegin(), q->rend());
  EXPECT_EQ(*p, q_rev);
  EXPECT_EQ(p->front(), v(1));
  EXPECT_EQ(p->back(), v(4));
}

TEST_F(GraphTest, SymmetricPathOnPathGraph) {
  SimplicialComplex k;
  for (int i = 0; i < 4; ++i) k.add(Simplex{v(i), v(i + 1)});
  const auto p = lex_min_shortest_path_symmetric(k, v(4), v(0));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->front(), v(4));
  EXPECT_EQ(p->back(), v(0));
  EXPECT_EQ(p->size(), 5u);
}

TEST_F(GraphTest, AdjacencyIsSortedAndDeduped) {
  // Intern ids in ascending order first so raw-id order matches labels.
  const VertexId a = v(0), b = v(1), c = v(2);
  SimplicialComplex k;
  k.add(Simplex{a, c});
  k.add(Simplex{a, b});
  k.add(Simplex{a, b, c});
  const auto adj = adjacency(k);
  EXPECT_EQ(adj.at(a), (std::vector<VertexId>{b, c}));
}

}  // namespace
}  // namespace trichroma
