// Unit tests for GF(2) homology: Betti numbers and bounding queries on
// standard shapes (disk, circle, annulus, sphere, wedge).

#include <gtest/gtest.h>

#include "topology/homology.h"

namespace trichroma {
namespace {

class HomologyTest : public ::testing::Test {
 protected:
  VertexPool pool;
  VertexId v(std::int64_t x) { return pool.vertex(kNoColor, x); }

  SimplicialComplex cycle(int n, int base = 0) {
    SimplicialComplex k;
    for (int i = 0; i < n; ++i) {
      k.add(Simplex{v(base + i), v(base + (i + 1) % n)});
    }
    return k;
  }
};

TEST_F(HomologyTest, PointAndDisk) {
  SimplicialComplex point;
  point.add(Simplex::single(v(0)));
  auto b = betti_numbers(point);
  EXPECT_EQ(b.b0, 1);
  EXPECT_EQ(b.b1, 0);

  SimplicialComplex disk;
  disk.add(Simplex{v(0), v(1), v(2)});
  b = betti_numbers(disk);
  EXPECT_EQ(b.b0, 1);
  EXPECT_EQ(b.b1, 0);
  EXPECT_EQ(b.b2, 0);
}

TEST_F(HomologyTest, CircleHasB1One) {
  const auto b = betti_numbers(cycle(6));
  EXPECT_EQ(b.b0, 1);
  EXPECT_EQ(b.b1, 1);
  EXPECT_EQ(b.b2, 0);
}

TEST_F(HomologyTest, TwoCirclesHaveB0TwoB1Two) {
  SimplicialComplex k = cycle(3, 0);
  k.add_all(cycle(3, 10));
  const auto b = betti_numbers(k);
  EXPECT_EQ(b.b0, 2);
  EXPECT_EQ(b.b1, 2);
}

TEST_F(HomologyTest, SphereOctahedron) {
  // Boundary of the octahedron: vertices {0,1} x {2,3} x {4,5} poles.
  SimplicialComplex k;
  for (int a : {0, 1}) {
    for (int b : {2, 3}) {
      for (int c : {4, 5}) {
        k.add(Simplex{v(a), v(b), v(c)});
      }
    }
  }
  const auto b = betti_numbers(k);
  EXPECT_EQ(b.b0, 1);
  EXPECT_EQ(b.b1, 0);
  EXPECT_EQ(b.b2, 1);
}

TEST_F(HomologyTest, AnnulusBoundaryCycleDoesNotBound) {
  // Hexagonal annulus: outer 0,1,2 / inner 3,4,5.
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1), v(5)});
  k.add(Simplex{v(1), v(5), v(3)});
  k.add(Simplex{v(1), v(2), v(3)});
  k.add(Simplex{v(2), v(3), v(4)});
  k.add(Simplex{v(2), v(0), v(4)});
  k.add(Simplex{v(0), v(4), v(5)});
  const auto b = betti_numbers(k);
  EXPECT_EQ(b.b1, 1);

  const Chain outer = loop_to_chain({v(0), v(1), v(2)});
  ASSERT_TRUE(is_one_cycle(outer));
  EXPECT_FALSE(bounds_in(k, outer));

  // The outer and inner cycles are homologous: outer + inner bounds.
  const Chain inner = loop_to_chain({v(3), v(4), v(5)});
  EXPECT_FALSE(bounds_in(k, inner));
  EXPECT_TRUE(bounds_in(k, chain_add(outer, inner)));
  // Equivalently, outer bounds modulo the inner cycle as a generator.
  EXPECT_TRUE(bounds_modulo(k, outer, {inner}));
}

TEST_F(HomologyTest, DiskBoundaryBounds) {
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1), v(2)});
  const Chain boundary_cycle = loop_to_chain({v(0), v(1), v(2)});
  EXPECT_TRUE(bounds_in(k, boundary_cycle));
}

TEST_F(HomologyTest, ChainAlgebra) {
  const Simplex e1{v(0), v(1)}, e2{v(1), v(2)}, e3{v(0), v(2)};
  const Chain a{e1, e2}, b{e2, e3};
  const Chain sum = chain_add(a, b);
  EXPECT_EQ(sum.size(), 2u);  // e2 cancels
  EXPECT_EQ(chain_add(a, a), Chain{});
  const Chain tri_boundary = boundary({Simplex{v(0), v(1), v(2)}});
  EXPECT_EQ(tri_boundary.size(), 3u);
  EXPECT_TRUE(is_one_cycle(tri_boundary));
}

TEST_F(HomologyTest, LoopToChainCancelsBacktracking) {
  // A pure out-and-back walk cancels entirely over GF(2).
  EXPECT_TRUE(loop_to_chain({v(0), v(1), v(0), v(2)}).empty());
  // 0-1-2-1-3 (closed) cancels the 1-2 backtrack, leaving the 0-1-3 cycle.
  const Chain c = loop_to_chain({v(0), v(1), v(2), v(1), v(3)});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(is_one_cycle(c));
}

TEST_F(HomologyTest, CycleBasisOfThetaGraph) {
  // Theta graph: two vertices joined by three internally disjoint paths →
  // cycle space of dimension 2.
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1)});
  k.add(Simplex{v(0), v(2)});
  k.add(Simplex{v(2), v(1)});
  k.add(Simplex{v(0), v(3)});
  k.add(Simplex{v(3), v(1)});
  const auto basis = cycle_basis(k);
  EXPECT_EQ(basis.size(), 2u);
  for (const Chain& c : basis) EXPECT_TRUE(is_one_cycle(c));
}

TEST_F(HomologyTest, CycleBasisOfForestIsEmpty) {
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1)});
  k.add(Simplex{v(1), v(2)});
  k.add(Simplex{v(3), v(4)});
  EXPECT_TRUE(cycle_basis(k).empty());
}


TEST_F(HomologyTest, OrientedChainBasics) {
  const VertexId a = v(0), b = v(1);  // intern in ascending-id order
  OrientedChain c;
  oriented_add_edge(c, a, b);
  oriented_add_edge(c, b, a);  // cancels
  EXPECT_TRUE(c.empty());
  oriented_add_edge(c, a, b);
  oriented_add_edge(c, a, b);
  EXPECT_EQ(c.at((Simplex{a, b})), 2);  // accumulates with sign
}

TEST_F(HomologyTest, OrientedPathAndCycle) {
  const OrientedChain path = oriented_path_chain({v(0), v(1), v(2)});
  EXPECT_FALSE(is_oriented_cycle(path));
  const OrientedChain loop = oriented_path_chain({v(0), v(1), v(2), v(0)});
  EXPECT_TRUE(is_oriented_cycle(loop));
  EXPECT_EQ(loop.size(), 3u);
}

TEST_F(HomologyTest, BoundsModuloPOnDiskAndAnnulus) {
  SimplicialComplex disk;
  disk.add(Simplex{v(0), v(1), v(2)});
  const OrientedChain tri = oriented_path_chain({v(0), v(1), v(2), v(0)});
  EXPECT_TRUE(bounds_modulo_p(disk, tri, {}, 2));
  EXPECT_TRUE(bounds_modulo_p(disk, tri, {}, 3));

  // Hexagonal annulus: the outer cycle does not bound over any prime.
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1), v(5)});
  k.add(Simplex{v(1), v(5), v(3)});
  k.add(Simplex{v(1), v(2), v(3)});
  k.add(Simplex{v(2), v(3), v(4)});
  k.add(Simplex{v(2), v(0), v(4)});
  k.add(Simplex{v(0), v(4), v(5)});
  const OrientedChain outer = oriented_path_chain({v(0), v(1), v(2), v(0)});
  EXPECT_FALSE(bounds_modulo_p(k, outer, {}, 2));
  EXPECT_FALSE(bounds_modulo_p(k, outer, {}, 3));

  // The *doubled* outer cycle is exactly what GF(2) cannot see: it reduces
  // to zero mod 2 ("bounds" trivially) but is 2.gamma != 0 mod 3.
  OrientedChain doubled;
  for (const auto& [edge, coeff] : outer) doubled.emplace(edge, 2 * coeff);
  EXPECT_TRUE(bounds_modulo_p(k, doubled, {}, 2));
  EXPECT_FALSE(bounds_modulo_p(k, doubled, {}, 3));
}

TEST_F(HomologyTest, BoundsModuloPWithGenerators) {
  // Annulus again: outer bounds modulo the inner cycle over every prime.
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1), v(5)});
  k.add(Simplex{v(1), v(5), v(3)});
  k.add(Simplex{v(1), v(2), v(3)});
  k.add(Simplex{v(2), v(3), v(4)});
  k.add(Simplex{v(2), v(0), v(4)});
  k.add(Simplex{v(0), v(4), v(5)});
  const OrientedChain outer = oriented_path_chain({v(0), v(1), v(2), v(0)});
  const OrientedChain inner = oriented_path_chain({v(3), v(4), v(5), v(3)});
  EXPECT_TRUE(bounds_modulo_p(k, outer, {inner}, 2));
  EXPECT_TRUE(bounds_modulo_p(k, outer, {inner}, 3));
}

TEST_F(HomologyTest, OrientedCycleBasisMatchesUnoriented) {
  SimplicialComplex k;
  k.add(Simplex{v(0), v(1)});
  k.add(Simplex{v(0), v(2)});
  k.add(Simplex{v(2), v(1)});
  k.add(Simplex{v(0), v(3)});
  k.add(Simplex{v(3), v(1)});
  const auto basis = oriented_cycle_basis(k);
  EXPECT_EQ(basis.size(), 2u);
  for (const OrientedChain& c : basis) {
    EXPECT_TRUE(is_oriented_cycle(c));
    for (const auto& [edge, coeff] : c) {
      (void)edge;
      EXPECT_TRUE(coeff == 1 || coeff == -1);
    }
  }
}


TEST_F(HomologyTest, CsaszarTorusBettiNumbers) {
  SimplicialComplex torus;
  for (int i = 0; i < 7; ++i) {
    auto at = [&](int x) { return v(x % 7); };
    torus.add(Simplex{at(i), at(i + 1), at(i + 3)});
    torus.add(Simplex{at(i), at(i + 2), at(i + 3)});
  }
  EXPECT_EQ(torus.count(0), 7u);
  EXPECT_EQ(torus.count(1), 21u);  // complete graph K7
  EXPECT_EQ(torus.count(2), 14u);
  EXPECT_EQ(torus.euler_characteristic(), 0);
  const auto b = betti_numbers(torus);
  EXPECT_EQ(b.b0, 1);
  EXPECT_EQ(b.b1, 2);
  EXPECT_EQ(b.b2, 1);
}

TEST_F(HomologyTest, ProjectivePlaneBettiNumbersOverGf2) {
  SimplicialComplex rp2;
  const int faces[10][3] = {{1, 2, 5}, {1, 2, 6}, {1, 3, 4}, {1, 3, 6}, {1, 4, 5},
                            {2, 3, 4}, {2, 3, 5}, {2, 4, 6}, {3, 5, 6}, {4, 5, 6}};
  for (const auto& f : faces) rp2.add(Simplex{v(f[0]), v(f[1]), v(f[2])});
  EXPECT_EQ(rp2.count(1), 15u);  // complete graph K6
  EXPECT_EQ(rp2.euler_characteristic(), 1);
  // Over GF(2) the projective plane has b1 = b2 = 1 (torsion made visible).
  const auto b = betti_numbers(rp2);
  EXPECT_EQ(b.b0, 1);
  EXPECT_EQ(b.b1, 1);
  EXPECT_EQ(b.b2, 1);
}

}  // namespace
}  // namespace trichroma
