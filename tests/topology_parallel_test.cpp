// Determinism of the parallel substrate builds: the multi-threaded
// subdivision ladder (topology/subdivision.h) and the stripe-sharded
// Δ-image population (solver/map_search.h) must be bit-equivalent to their
// sequential paths — same raw vertex ids, colors, carriers, and compiled
// geometry for the ladder; same cached images and the same hit/miss
// accounting for the cache — at every thread count. These are the
// invariants behind the batch driver's byte-identical report contract, so
// they are asserted directly here rather than only end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "solver/map_search.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

std::vector<std::vector<std::uint32_t>> facet_table(const SimplicialComplex& c) {
  std::vector<std::vector<std::uint32_t>> out;
  c.for_each([&](const Simplex& s) {
    std::vector<std::uint32_t> f;
    f.reserve(s.size());
    for (VertexId v : s) f.push_back(raw(v));
    out.push_back(std::move(f));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::uint32_t, std::vector<std::uint32_t>> carrier_table(
    const SubdividedComplex& s) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> out;
  for (const auto& [v, carrier] : s.carrier) {
    std::vector<std::uint32_t> c;
    c.reserve(carrier.size());
    for (VertexId w : carrier) c.push_back(raw(w));
    out.emplace(raw(v), std::move(c));
  }
  return out;
}

/// Full structural equality across two independently grown pools: facets by
/// raw id, carriers, colors, and the compiled snapshots row for row.
void expect_equivalent(const VertexPool& pa, const SubdividedComplex& a,
                       const VertexPool& pb, const SubdividedComplex& b) {
  EXPECT_EQ(facet_table(a.complex), facet_table(b.complex));
  EXPECT_EQ(carrier_table(a), carrier_table(b));

  ASSERT_NE(a.compiled, nullptr);
  ASSERT_NE(b.compiled, nullptr);
  const CompiledComplex& ca = *a.compiled;
  const CompiledComplex& cb = *b.compiled;
  ASSERT_EQ(ca.num_vertices(), cb.num_vertices());
  for (std::size_t i = 0; i < ca.num_vertices(); ++i) {
    const auto l = static_cast<CompiledComplex::Local>(i);
    EXPECT_EQ(ca.vertex(l), cb.vertex(l));
    EXPECT_EQ(pa.color(ca.vertex(l)), pb.color(cb.vertex(l)));
  }
  ASSERT_EQ(ca.num_edges(), cb.num_edges());
  for (std::size_t e = 0; e < ca.num_edges(); ++e) {
    EXPECT_EQ(ca.edge(e), cb.edge(e));
  }
  ASSERT_EQ(ca.num_triangles(), cb.num_triangles());
  for (std::size_t t = 0; t < ca.num_triangles(); ++t) {
    EXPECT_EQ(ca.triangle(t), cb.triangle(t));
  }
  ca.debug_verify_against(b.complex);
  cb.debug_verify_against(a.complex);
}

/// Grows the ladder twice on two private pools — sequential vs `threads` —
/// comparing every level. Equal raw ids across pools is the strongest form
/// of the contract: the parallel build interned in exactly the sequential
/// order.
void sweep_task(Task (*build)(), int threads, int max_r) {
  const Task ts = build();
  const Task tp = build();
  SubdividedComplex seq = identity_subdivision(ts.input);
  SubdividedComplex par = identity_subdivision(tp.input);
  expect_equivalent(*ts.pool, seq, *tp.pool, par);
  for (int r = 1; r <= max_r; ++r) {
    seq = subdivide_once(*ts.pool, seq, 1);
    par = subdivide_once(*tp.pool, par, threads);
    SCOPED_TRACE("radius " + std::to_string(r));
    expect_equivalent(*ts.pool, seq, *tp.pool, par);
  }
}

TEST(ParallelLadder, MatchesSequentialOnWholeCatalog) {
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    for (const zoo::CatalogEntry& entry : zoo::catalog()) {
      SCOPED_TRACE(entry.name);
      sweep_task(entry.build, threads, 2);
    }
  }
}

TEST(ParallelLadder, MatchesSequentialAtRadiusThree) {
  // Radius 3 exercises many chunks per dimension (13^3 facets per base
  // triangle); the full catalog at this depth is too slow for the suite, so
  // one obstructed catalog task stands in.
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    sweep_task(+[] { return zoo::hourglass(); }, threads, 3);
  }
}

TEST(ParallelLadder, MatchesSequentialOnSeededRandomTasks) {
  for (std::uint64_t seed : {3u, 17u, 58u, 71u, 104u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    zoo::RandomTaskParams params;
    params.seed = seed;
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const Task ts = zoo::random_task(params);
      const Task tp = zoo::random_task(params);
      SubdividedComplex seq = identity_subdivision(ts.input);
      SubdividedComplex par = identity_subdivision(tp.input);
      for (int r = 1; r <= 2; ++r) {
        seq = subdivide_once(*ts.pool, seq, 1);
        par = subdivide_once(*tp.pool, par, threads);
        SCOPED_TRACE("radius " + std::to_string(r));
        expect_equivalent(*ts.pool, seq, *tp.pool, par);
      }
    }
  }
}

TEST(ParallelLadder, LadderHandleForwardsThreads) {
  const Task ts = zoo::hourglass();
  const Task tp = zoo::hourglass();
  SubdivisionLadder seq(*ts.pool, ts.input);
  SubdivisionLadder par(*tp.pool, tp.input);
  par.set_threads(8);
  EXPECT_EQ(par.threads(), 8);
  for (int r = 0; r <= 2; ++r) {
    SCOPED_TRACE("radius " + std::to_string(r));
    expect_equivalent(*ts.pool, seq.at(r), *tp.pool, par.at(r));
  }
}

// ---------------------------------------------------------------------------
// Stripe-sharded Δ-image population
// ---------------------------------------------------------------------------

/// Compiled-image equality, row for row.
void expect_same_image(const CompiledComplex* a, const CompiledComplex* b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->num_vertices(), b->num_vertices());
  for (std::size_t i = 0; i < a->num_vertices(); ++i) {
    const auto l = static_cast<CompiledComplex::Local>(i);
    EXPECT_EQ(a->vertex(l), b->vertex(l));
  }
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (std::size_t e = 0; e < a->num_edges(); ++e) {
    EXPECT_EQ(a->edge(e), b->edge(e));
  }
  ASSERT_EQ(a->num_triangles(), b->num_triangles());
  for (std::size_t t = 0; t < a->num_triangles(); ++t) {
    EXPECT_EQ(a->triangle(t), b->triangle(t));
  }
}

/// The shared access script both runs replay: touch every other carrier
/// twice (so hits exist), leave the rest untouched (so eager entries that
/// are never asked for must not count).
void run_access_script(DeltaImageCache& cache, const Task& task,
                       const std::vector<Simplex>& carriers,
                       std::vector<const CompiledComplex*>* images) {
  for (std::size_t i = 0; i < carriers.size(); i += 2) {
    const CompiledComplex* first = cache.image_of(task.delta, carriers[i]);
    const CompiledComplex* second = cache.image_of(task.delta, carriers[i]);
    EXPECT_EQ(first, second);
    images->push_back(first);
  }
}

void expect_populate_matches_lazy(const Task& task) {
  std::vector<Simplex> carriers;
  for (const Simplex& s : task.input.all_simplices()) {
    if (!s.empty()) carriers.push_back(s);
  }
  ASSERT_FALSE(carriers.empty());

  DeltaImageCache lazy;
  std::vector<const CompiledComplex*> lazy_images;
  run_access_script(lazy, task, carriers, &lazy_images);

  obs::Counter& contention =
      obs::MetricsRegistry::global().counter("cache.delta.stripe_contention");
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const std::uint64_t contention_before = contention.value();
    DeltaImageCache eager;
    eager.populate(task.delta, carriers, threads);
    if (threads == 1) {
      // The unsharded path never races, so it must never report contention.
      EXPECT_EQ(contention.value(), contention_before);
    }
    EXPECT_EQ(eager.size(), carriers.size());
    EXPECT_EQ(eager.warm_remaining(), carriers.size());
    // Eager compilation itself charges nothing.
    EXPECT_EQ(eager.hits(), 0u);
    EXPECT_EQ(eager.misses(), 0u);

    std::vector<const CompiledComplex*> eager_images;
    run_access_script(eager, task, carriers, &eager_images);
    // Identical accounting to the lazy cold path: first touch of a
    // populated entry is the miss a lazy run would have paid, repeat
    // touches hit, untouched entries never count.
    EXPECT_EQ(eager.hits(), lazy.hits());
    EXPECT_EQ(eager.misses(), lazy.misses());
    EXPECT_EQ(eager.warm_remaining(),
              carriers.size() - (carriers.size() + 1) / 2);
    ASSERT_EQ(eager_images.size(), lazy_images.size());
    for (std::size_t i = 0; i < eager_images.size(); ++i) {
      expect_same_image(eager_images[i], lazy_images[i]);
    }
  }
}

TEST(DeltaImagePopulate, ShardedAccountingMatchesLazyPath) {
  expect_populate_matches_lazy(zoo::hourglass());
  zoo::RandomTaskParams params;
  params.seed = 29;
  expect_populate_matches_lazy(zoo::random_task(params));
}

TEST(DeltaImagePopulate, SkipsExistingEntriesAndIsIdempotent) {
  const Task task = zoo::hourglass();
  std::vector<Simplex> carriers;
  for (const Simplex& s : task.input.all_simplices()) {
    if (!s.empty()) carriers.push_back(s);
  }
  DeltaImageCache cache;
  // Fault one entry in the ordinary lazy way first; populate must leave it
  // (and its already-charged miss) alone.
  const CompiledComplex* before = cache.image_of(task.delta, carriers.front());
  EXPECT_EQ(cache.misses(), 1u);
  cache.populate(task.delta, carriers, 8);
  cache.populate(task.delta, carriers, 8);  // second call: all cached, no-op
  EXPECT_EQ(cache.size(), carriers.size());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.image_of(task.delta, carriers.front()), before);
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace trichroma
