// Unit tests for the standard chromatic subdivision Ch^r.

#include <gtest/gtest.h>

#include "topology/chromatic.h"
#include "topology/graph.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

class SubdivisionTest : public ::testing::Test {
 protected:
  VertexPool pool;

  SimplicialComplex triangle() {
    SimplicialComplex k;
    k.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
    return k;
  }
};

TEST_F(SubdivisionTest, OrderedPartitionsCount) {
  // Fubini numbers: 1, 3, 13 for 1, 2, 3 elements.
  const VertexId a = pool.vertex(0, 0), b = pool.vertex(1, 1), c = pool.vertex(2, 2);
  EXPECT_EQ(ordered_partitions({a}).size(), 1u);
  EXPECT_EQ(ordered_partitions({a, b}).size(), 3u);
  EXPECT_EQ(ordered_partitions({a, b, c}).size(), 13u);
}

TEST_F(SubdivisionTest, IdentitySubdivisionIsBase) {
  const SimplicialComplex base = triangle();
  const SubdividedComplex sub = identity_subdivision(base);
  EXPECT_TRUE(sub.complex == base);
  for (VertexId v : base.vertex_ids()) {
    EXPECT_EQ(sub.carrier.at(v), Simplex::single(v));
  }
}

TEST_F(SubdivisionTest, OneRoundCountsForTriangle) {
  // Ch(σ) for a 2-simplex: 12 vertices (4 views per process), 13 facets.
  const SubdividedComplex sub = chromatic_subdivision(pool, triangle(), 1);
  EXPECT_EQ(sub.complex.count(0), 12u);
  EXPECT_EQ(sub.complex.count(2), 13u);
  EXPECT_EQ(sub.complex.euler_characteristic(), 1);  // still a disk
  EXPECT_TRUE(sub.complex.is_pure());
  EXPECT_TRUE(is_chromatic_complex(pool, sub.complex));
  EXPECT_TRUE(is_properly_colored(pool, sub.complex, 3));
}

TEST_F(SubdivisionTest, OneRoundCountsForEdge) {
  SimplicialComplex edge;
  edge.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1)});
  const SubdividedComplex sub = chromatic_subdivision(pool, edge, 1);
  // Ch of an edge: a path of 3 edges, 4 vertices.
  EXPECT_EQ(sub.complex.count(0), 4u);
  EXPECT_EQ(sub.complex.count(1), 3u);
  EXPECT_TRUE(is_connected(sub.complex));
}

TEST_F(SubdivisionTest, TwoRoundsCountsForTriangle) {
  const SubdividedComplex sub = chromatic_subdivision(pool, triangle(), 2);
  EXPECT_EQ(sub.complex.count(2), 169u);  // 13^2
  EXPECT_EQ(sub.complex.euler_characteristic(), 1);
  EXPECT_TRUE(is_chromatic_complex(pool, sub.complex));
}

TEST_F(SubdivisionTest, CarriersAreFacesOfBase) {
  const SimplicialComplex base = triangle();
  const Simplex sigma = base.facets().front();
  const SubdividedComplex sub = chromatic_subdivision(pool, base, 1);
  std::size_t corner = 0, edge_interior = 0, interior = 0;
  for (VertexId v : sub.complex.vertex_ids()) {
    const Simplex& carrier = sub.carrier.at(v);
    EXPECT_TRUE(sigma.contains_all(carrier));
    // Chromatic carrier maps demand the vertex's own color in its carrier.
    bool own_color = false;
    for (VertexId u : carrier) {
      if (pool.color(u) == pool.color(v)) own_color = true;
    }
    EXPECT_TRUE(own_color);
    if (carrier.size() == 1) ++corner;
    if (carrier.size() == 2) ++edge_interior;
    if (carrier.size() == 3) ++interior;
  }
  EXPECT_EQ(corner, 3u);         // solo views
  EXPECT_EQ(edge_interior, 6u);  // two per boundary edge
  EXPECT_EQ(interior, 3u);       // central vertices
}

TEST_F(SubdivisionTest, BoundaryRestrictionIsSubdividedEdge) {
  // The subdivision restricted to vertices carried by an edge of σ is
  // exactly Ch of that edge (the gluing property).
  const SimplicialComplex base = triangle();
  const SubdividedComplex sub = chromatic_subdivision(pool, base, 1);
  const Simplex sigma = base.facets().front();
  const Simplex e{sigma[0], sigma[1]};
  std::size_t count = 0;
  for (VertexId v : sub.complex.vertex_ids()) {
    if (e.contains_all(sub.carrier.at(v))) ++count;
  }
  EXPECT_EQ(count, 4u);  // matches Ch(edge)
}

TEST_F(SubdivisionTest, CarrierOfSimplexIsUnionOfVertexCarriers) {
  const SubdividedComplex sub = chromatic_subdivision(pool, triangle(), 1);
  for (const Simplex& f : sub.complex.simplices(2)) {
    const Simplex carrier = sub.carrier_of(f);
    EXPECT_GE(carrier.size(), 1u);
    EXPECT_LE(carrier.size(), 3u);
  }
}

TEST_F(SubdivisionTest, LadderMatchesColdSubdivisionFacetForFacet) {
  // The incremental ladder must agree with a from-scratch
  // chromatic_subdivision at every radius: same complex (simplex-for-simplex
  // via operator==, hence facet-for-facet) and same carriers.
  const SimplicialComplex base = triangle();
  SubdivisionLadder ladder(pool, base);
  for (int r = 0; r <= 3; ++r) {
    const SubdividedComplex cold = chromatic_subdivision(pool, base, r);
    const SubdividedComplex& inc = ladder.at(r);
    EXPECT_TRUE(inc.complex == cold.complex) << "radius " << r;
    EXPECT_EQ(inc.carrier.size(), cold.carrier.size()) << "radius " << r;
    for (const auto& [v, carrier] : cold.carrier) {
      ASSERT_TRUE(inc.carrier.count(v) > 0) << "radius " << r;
      EXPECT_EQ(inc.carrier.at(v), carrier) << "radius " << r;
    }
  }
  EXPECT_EQ(ladder.max_computed(), 3);
}

TEST_F(SubdivisionTest, LadderLevelsAreStableAcrossGrowth) {
  // References returned by at() must survive deeper levels being computed,
  // and re-asking for a memoized level must not recompute (same address).
  const SimplicialComplex base = triangle();
  SubdivisionLadder ladder(pool, base);
  const SubdividedComplex& level1 = ladder.at(1);
  const std::size_t facets_before = level1.complex.count(2);
  ladder.at(3);
  EXPECT_EQ(level1.complex.count(2), facets_before);
  EXPECT_EQ(&ladder.at(1), &level1);
}

TEST_F(SubdivisionTest, LadderOnMultiFacetBase) {
  SimplicialComplex base;
  const VertexId a = pool.vertex(0, 0), b = pool.vertex(1, 1), c = pool.vertex(2, 2),
                 d = pool.vertex(0, 9);
  base.add(Simplex{a, b, c});
  base.add(Simplex{d, b, c});
  SubdivisionLadder ladder(pool, base);
  for (int r = 0; r <= 2; ++r) {
    EXPECT_TRUE(ladder.at(r).complex ==
                chromatic_subdivision(pool, base, r).complex)
        << "radius " << r;
  }
}

TEST_F(SubdivisionTest, SubdivisionOfTwoFacetComplexGluesOnSharedEdge) {
  SimplicialComplex base;
  const VertexId a = pool.vertex(0, 0), b = pool.vertex(1, 1), c = pool.vertex(2, 2),
                 d = pool.vertex(0, 9);
  base.add(Simplex{a, b, c});
  base.add(Simplex{d, b, c});
  const SubdividedComplex sub = chromatic_subdivision(pool, base, 1);
  // 13 facets per base facet, glued along the shared subdivided edge {b,c}.
  EXPECT_EQ(sub.complex.count(2), 26u);
  // Vertices: 12 + 12 minus the 4 shared on Ch({b,c}).
  EXPECT_EQ(sub.complex.count(0), 20u);
  EXPECT_TRUE(is_connected(sub.complex));
}

}  // namespace
}  // namespace trichroma
