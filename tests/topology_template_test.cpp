// Differential tests for the template-stamped standard chromatic
// subdivision: subdivide_once (stamped from precompiled per-dimension
// ChTemplates) must reproduce subdivide_once_reference (per-simplex
// ordered-partition enumeration) exactly — same facets, same carriers, same
// colors, same compiled CSR, and the same interning order, so raw vertex
// ids agree across two independently grown pools.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

std::vector<std::vector<std::uint32_t>> facet_table(const SimplicialComplex& c) {
  std::vector<std::vector<std::uint32_t>> out;
  c.for_each([&](const Simplex& s) {
    std::vector<std::uint32_t> f;
    f.reserve(s.size());
    for (VertexId v : s) f.push_back(raw(v));
    out.push_back(std::move(f));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::uint32_t, std::vector<std::uint32_t>> carrier_table(
    const SubdividedComplex& s) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> out;
  for (const auto& [v, carrier] : s.carrier) {
    std::vector<std::uint32_t> c;
    c.reserve(carrier.size());
    for (VertexId w : carrier) c.push_back(raw(w));
    out.emplace(raw(v), std::move(c));
  }
  return out;
}

/// Full structural equality of the stamped and reference outputs, including
/// pool-state equality (identical raw ids and colors across the two pools).
void expect_equivalent(const VertexPool& pa, const SubdividedComplex& a,
                       const VertexPool& pb, const SubdividedComplex& b) {
  EXPECT_EQ(facet_table(a.complex), facet_table(b.complex));
  EXPECT_EQ(carrier_table(a), carrier_table(b));

  ASSERT_NE(a.compiled, nullptr);
  ASSERT_NE(b.compiled, nullptr);
  const CompiledComplex& ca = *a.compiled;
  const CompiledComplex& cb = *b.compiled;
  ASSERT_EQ(ca.num_vertices(), cb.num_vertices());
  for (std::size_t i = 0; i < ca.num_vertices(); ++i) {
    const auto l = static_cast<CompiledComplex::Local>(i);
    EXPECT_EQ(ca.vertex(l), cb.vertex(l));
    EXPECT_EQ(pa.color(ca.vertex(l)), pb.color(cb.vertex(l)));
  }
  ASSERT_EQ(ca.num_edges(), cb.num_edges());
  for (std::size_t e = 0; e < ca.num_edges(); ++e) {
    EXPECT_EQ(ca.edge(e), cb.edge(e));
  }
  ASSERT_EQ(ca.num_triangles(), cb.num_triangles());
  for (std::size_t t = 0; t < ca.num_triangles(); ++t) {
    EXPECT_EQ(ca.triangle(t), cb.triangle(t));
  }
  ASSERT_EQ(ca.dimension(), cb.dimension());
  for (int d = 0; d <= ca.dimension(); ++d) {
    EXPECT_EQ(ca.count(d), cb.count(d));
  }
  // Cross-check each snapshot against the OTHER build's hash-set complex:
  // catches any divergence the tables above might normalize away.
  ca.debug_verify_against(b.complex);
  cb.debug_verify_against(a.complex);
}

/// Grows Ch^0..Ch^max_r twice — stamped vs reference — on two private
/// pools, comparing every level.
void sweep_task(Task (*build)(), int max_r) {
  const Task ta = build();
  const Task tb = build();
  SubdividedComplex a = identity_subdivision(ta.input);
  SubdividedComplex b = identity_subdivision(tb.input);
  expect_equivalent(*ta.pool, a, *tb.pool, b);
  for (int r = 1; r <= max_r; ++r) {
    a = subdivide_once(*ta.pool, a);
    b = subdivide_once_reference(*tb.pool, b);
    SCOPED_TRACE("radius " + std::to_string(r));
    expect_equivalent(*ta.pool, a, *tb.pool, b);
  }
}

TEST(ChTemplate, KnownCombinatoricsPerDimension) {
  // |Ch(σ^d)| facets = ordered Bell numbers; vertices = m * 2^(m-1)
  // (a (position, view) pair for every view containing the position).
  const ChTemplate& t1 = ch_template(1);
  EXPECT_EQ(t1.num_facets, 1u);
  EXPECT_EQ(t1.uniq.size(), 1u);
  const ChTemplate& t2 = ch_template(2);
  EXPECT_EQ(t2.num_facets, 3u);
  EXPECT_EQ(t2.uniq.size(), 4u);
  const ChTemplate& t3 = ch_template(3);
  EXPECT_EQ(t3.num_facets, 13u);
  EXPECT_EQ(t3.uniq.size(), 12u);
  EXPECT_EQ(t3.slots.size(), 13u * 3u);
  const ChTemplate& t4 = ch_template(4);
  EXPECT_EQ(t4.num_facets, 75u);
  EXPECT_EQ(t4.uniq.size(), 32u);
}

TEST(ChTemplate, ThrowsBeyondEightVertices) {
  EXPECT_THROW(ch_template(9), std::length_error);
}

TEST(TemplateStamping, MatchesReferenceOnWholeCatalogToRadiusTwo) {
  for (const zoo::CatalogEntry& entry : zoo::catalog()) {
    SCOPED_TRACE(entry.name);
    // Radius 2 doubles as the golden pipeline table's max probe depth.
    sweep_task(entry.build, 2);
  }
}

TEST(TemplateStamping, MatchesReferenceOnSeededRandomTasks) {
  for (std::uint64_t seed : {1u, 7u, 23u, 42u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    zoo::RandomTaskParams params;
    params.seed = seed;
    const Task ta = zoo::random_task(params);
    const Task tb = [&] {
      zoo::RandomTaskParams p2;
      p2.seed = seed;
      return zoo::random_task(p2);
    }();
    SubdividedComplex a = identity_subdivision(ta.input);
    SubdividedComplex b = identity_subdivision(tb.input);
    for (int r = 1; r <= 2; ++r) {
      a = subdivide_once(*ta.pool, a);
      b = subdivide_once_reference(*tb.pool, b);
      SCOPED_TRACE("radius " + std::to_string(r));
      expect_equivalent(*ta.pool, a, *tb.pool, b);
    }
  }
}

TEST(TemplateStamping, MatchesReferenceOnATetrahedron) {
  // Dimension 3 exercises the n = 4 template (75 facets per tetrahedron)
  // and the generic d >= 3 cell path of the compiled builder.
  auto build = [](VertexPool& pool) {
    std::vector<VertexId> corners;
    for (Color c = 0; c < 4; ++c) {
      corners.push_back(pool.vertex(c, static_cast<std::int64_t>(c)));
    }
    SimplicialComplex base;
    base.add(Simplex(std::move(corners)));
    return identity_subdivision(base);
  };
  VertexPool pa, pb;
  SubdividedComplex a = build(pa);
  SubdividedComplex b = build(pb);
  for (int r = 1; r <= 2; ++r) {
    a = subdivide_once(pa, a);
    b = subdivide_once_reference(pb, b);
    SCOPED_TRACE("radius " + std::to_string(r));
    expect_equivalent(pa, a, pb, b);
  }
}

}  // namespace
}  // namespace trichroma
