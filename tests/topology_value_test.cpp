// Unit tests for value and vertex interning.

#include <gtest/gtest.h>

#include "topology/value.h"
#include "topology/vertex.h"

namespace trichroma {
namespace {

TEST(ValuePool, InternsIntsCanonically) {
  ValuePool pool;
  const ValueId a = pool.of_int(42);
  const ValueId b = pool.of_int(42);
  const ValueId c = pool.of_int(-7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.as_int(a), 42);
  EXPECT_EQ(pool.as_int(c), -7);
  EXPECT_EQ(pool.kind(a), ValuePool::Kind::Int);
}

TEST(ValuePool, InternsStringsCanonically) {
  ValuePool pool;
  const ValueId a = pool.of_string("hello");
  const ValueId b = pool.of_string("hello");
  const ValueId c = pool.of_string("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.as_string(c), "world");
}

TEST(ValuePool, IntAndStringDoNotCollide) {
  ValuePool pool;
  EXPECT_NE(pool.of_int(1), pool.of_string("1"));
}

TEST(ValuePool, TuplesAreOrderSensitive) {
  ValuePool pool;
  const ValueId one = pool.of_int(1), two = pool.of_int(2);
  const ValueId t12 = pool.of_tuple({one, two});
  const ValueId t21 = pool.of_tuple({two, one});
  EXPECT_NE(t12, t21);
  EXPECT_EQ(t12, pool.of_tuple({one, two}));
  ASSERT_EQ(pool.elements(t12).size(), 2u);
  EXPECT_EQ(pool.elements(t12)[0], one);
}

TEST(ValuePool, SetsAreOrderInsensitiveAndDeduped) {
  ValuePool pool;
  const ValueId one = pool.of_int(1), two = pool.of_int(2);
  const ValueId s = pool.of_set({two, one, two});
  EXPECT_EQ(s, pool.of_set({one, two}));
  EXPECT_EQ(pool.elements(s).size(), 2u);
}

TEST(ValuePool, NestedValuesRender) {
  ValuePool pool;
  const ValueId inner = pool.of_tuple({pool.of_string("split"), pool.of_int(3)});
  const ValueId outer = pool.of_set({inner, pool.of_int(9)});
  EXPECT_FALSE(pool.to_string(outer).empty());
  EXPECT_EQ(pool.kind(outer), ValuePool::Kind::Set);
}

TEST(ValuePool, TupleAndSetWithSameElementsDiffer) {
  ValuePool pool;
  const ValueId one = pool.of_int(1), two = pool.of_int(2);
  EXPECT_NE(pool.of_tuple({one, two}), pool.of_set({one, two}));
}

TEST(VertexPool, InternsByColorAndValue) {
  VertexPool pool;
  const VertexId a = pool.vertex(0, 5);
  const VertexId b = pool.vertex(0, 5);
  const VertexId c = pool.vertex(1, 5);
  const VertexId d = pool.vertex(0, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(pool.color(c), 1);
  EXPECT_EQ(pool.values().as_int(pool.value(d)), 6);
}

TEST(VertexPool, ColorlessVerticesSupported) {
  VertexPool pool;
  const VertexId v = pool.vertex(kNoColor, "node");
  EXPECT_EQ(pool.color(v), kNoColor);
  EXPECT_EQ(pool.name(v), "_:node");
}

TEST(VertexPool, NamesIncludeColorPrefix) {
  VertexPool pool;
  const VertexId v = pool.vertex(2, 7);
  EXPECT_EQ(pool.name(v), "P2:7");
}

TEST(VertexPool, IdsAreDenseAndStable) {
  VertexPool pool;
  const VertexId a = pool.vertex(0, 0);
  const VertexId b = pool.vertex(1, 0);
  EXPECT_EQ(raw(a), 0u);
  EXPECT_EQ(raw(b), 1u);
  EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
}  // namespace trichroma
