#!/usr/bin/env python3
"""Diff a fresh google-benchmark JSON run against a checked-in baseline.

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]

Matches benchmarks by name (per-iteration rows only — aggregate rows from
--benchmark_repetitions are skipped), compares real_time after normalizing
time units, and prints a table of ratios. Exits non-zero when any benchmark
regressed past the threshold (default +25%), which is what the CI release
job gates on. Benchmarks present on only one side are collected into a
warning list at the end of the output; by default they never fail the run —
a renamed or newly added benchmark needs a baseline refresh, not a red
build — but under --strict they do, which is how CI catches a drifted
baseline instead of silently gating on the intersection.

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """name -> real_time in nanoseconds, iteration rows only."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # mean/median/stddev aggregates
        unit = _UNIT_NS.get(row.get("time_unit", "ns"))
        if unit is None:
            raise ValueError(
                f"{path}: unknown time_unit {row.get('time_unit')!r} "
                f"for {row.get('name')!r}"
            )
        out[row["name"]] = float(row["real_time"]) * unit
    return out


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail when a benchmark regressed past the threshold."
    )
    parser.add_argument("baseline", help="checked-in BENCH_*.json")
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative slowdown per benchmark (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on benchmarks present on only one side (baseline drift) "
        "in addition to regressions",
    )
    args = parser.parse_args(argv)

    base = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    regressions = []
    width = max((len(n) for n in base), default=10)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'fresh':>12}  {'ratio':>7}")
    for name in sorted(base):
        if name not in fresh:
            print(f"{name:<{width}}  {base[name]:>12.0f}  {'MISSING':>12}")
            continue
        ratio = fresh[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        print(
            f"{name:<{width}}  {base[name]:>12.0f}  {fresh[name]:>12.0f}"
            f"  {ratio:>6.2f}x{flag}"
        )
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<{width}}  {'NEW':>12}  {fresh[name]:>12.0f}")

    one_sided = sorted(set(base) ^ set(fresh))
    if one_sided:
        print("\nwarning: benchmarks present on only one side:")
        for name in one_sided:
            side = "baseline only" if name in base else "fresh only"
            print(f"  {name} ({side})")
        print("  (refresh the checked-in baseline to resolve)")
    if args.strict and one_sided:
        print(
            f"\n--strict: {len(one_sided)} one-sided benchmark name(s); "
            "the baseline no longer matches the suite.",
            file=sys.stderr,
        )
        return 1

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed past "
            f"+{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed past +{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
