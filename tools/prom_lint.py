#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (0.0.4) file, stdlib only.

Usage: tools/prom_lint.py FILE [FILE...]

Checks the subset of the format that trichroma's to_prometheus() emits:

  * every sample line parses as  name{labels} value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*);
  * every metric family is announced by a  # TYPE  line before its first
    sample, with a known type (counter | gauge | histogram);
  * no family is announced twice, and no metric name is emitted under
    two different families;
  * histogram families carry  _bucket / _sum / _count  series; bucket
    `le` bounds are strictly increasing, cumulative counts are
    monotonically non-decreasing, and the mandatory  le="+Inf"  bucket
    is present and equals  _count.

Exit status 0 when every file is clean, 1 otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
TYPE_RE = re.compile(r"^# TYPE (?P<name>\S+) (?P<kind>\S+)$")
KNOWN_KINDS = ("counter", "gauge", "histogram")


def parse_le(labels):
    """Return the le="..." bound from a label body, or None."""
    if not labels:
        return None
    m = re.search(r'le="([^"]*)"', labels)
    return m.group(1) if m else None


def lint_file(path):
    errors = []

    def err(lineno, message):
        errors.append("%s:%d: %s" % (path, lineno, message))

    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        return ["%s: unreadable: %s" % (path, exc)]

    families = {}  # family name -> kind
    histograms = {}  # family name -> {"buckets": [(le, value)], "sum": x, "count": x}
    seen_samples = set()

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m is None:
                if line.startswith("# TYPE"):
                    err(lineno, "malformed # TYPE line: %r" % line)
                continue  # HELP/comment lines are fine
            name, kind = m.group("name"), m.group("kind")
            if not NAME_RE.match(name):
                err(lineno, "illegal metric name in # TYPE: %r" % name)
            if kind not in KNOWN_KINDS:
                err(lineno, "unknown metric type %r for %s" % (kind, name))
            if name in families:
                err(lineno, "duplicate # TYPE for %s" % name)
            families[name] = kind
            if kind == "histogram":
                histograms[name] = {"buckets": [], "sum": None, "count": None}
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            err(lineno, "unparseable sample line: %r" % line)
            continue
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            err(lineno, "non-numeric value %r for %s" % (m.group("value"), name))
            continue

        # Resolve the family: histogram series use suffixed names.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and families.get(base) == "histogram":
                family = base
                break
        if family not in families:
            err(lineno, "sample %s has no preceding # TYPE line" % name)
            continue

        key = (name, m.group("labels") or "")
        if key in seen_samples:
            err(lineno, "duplicate sample %s{%s}" % key)
        seen_samples.add(key)

        if families[family] == "histogram":
            hist = histograms[family]
            if name == family + "_bucket":
                le = parse_le(m.group("labels"))
                if le is None:
                    err(lineno, "%s_bucket sample without an le label" % family)
                else:
                    hist["buckets"].append((lineno, le, value))
            elif name == family + "_sum":
                hist["sum"] = value
            elif name == family + "_count":
                hist["count"] = value
            else:
                err(lineno, "histogram %s has stray series %s" % (family, name))

    for family, hist in sorted(histograms.items()):
        if hist["sum"] is None:
            errors.append("%s: histogram %s is missing _sum" % (path, family))
        if hist["count"] is None:
            errors.append("%s: histogram %s is missing _count" % (path, family))
        if not hist["buckets"]:
            errors.append("%s: histogram %s has no _bucket series" % (path, family))
            continue
        prev_bound = None
        prev_value = None
        inf_value = None
        for lineno, le, value in hist["buckets"]:
            if le == "+Inf":
                inf_value = value
                bound = float("inf")
            else:
                try:
                    bound = float(le)
                except ValueError:
                    err_line = "%s:%d: bad le bound %r in %s" % (path, lineno, le, family)
                    errors.append(err_line)
                    continue
            if prev_bound is not None and not bound > prev_bound:
                errors.append(
                    "%s:%d: %s bucket bounds not increasing (le=%s after %s)"
                    % (path, lineno, family, le, prev_bound)
                )
            if prev_value is not None and value < prev_value:
                errors.append(
                    "%s:%d: %s cumulative bucket counts decreased at le=%s"
                    % (path, lineno, family, le)
                )
            prev_bound, prev_value = bound, value
        if inf_value is None:
            errors.append(
                "%s: histogram %s is missing the mandatory le=\"+Inf\" bucket"
                % (path, family)
            )
        elif hist["count"] is not None and inf_value != hist["count"]:
            errors.append(
                "%s: histogram %s le=\"+Inf\" bucket (%g) != _count (%g)"
                % (path, family, inf_value, hist["count"])
            )
        if hist["buckets"][-1][1] != "+Inf":
            errors.append(
                "%s: histogram %s does not end on the le=\"+Inf\" bucket"
                % (path, family)
            )

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(lint_file(path))
    for message in all_errors:
        print(message, file=sys.stderr)
    if all_errors:
        print("prom_lint: %d problem(s)" % len(all_errors), file=sys.stderr)
        return 1
    print("prom_lint: %d file(s) clean" % (len(argv) - 1))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
