#!/usr/bin/env bash
# Runs a benchmark suite and writes machine-readable results to
# BENCH_<suite>.json at the repo root (committed, so perf changes show up as
# a diff). Usage:
#
#   tools/run_bench.sh [suite] [build-dir] [extra google-benchmark flags...]
#
# Suites:
#   engine     bench_engine_perf  -> BENCH_engine.json     (default)
#   substrate  bench_substrate    -> BENCH_substrate.json
#   batch      bench_batch        -> BENCH_batch.json
#   cache      bench_cache        -> BENCH_cache.json
#   obs        bench_obs          -> BENCH_obs.json
#   scaling    bench_scaling      -> BENCH_scaling.json
#   ladder     bench_ladder       -> BENCH_ladder.json
#
# e.g.  tools/run_bench.sh engine build-release --benchmark_filter=BM_DecisionMapSearch
#       tools/run_bench.sh batch build-release --benchmark_filter=BM_ZooBatch
#
# The first argument is treated as a build dir (legacy calling convention)
# when it is not a known suite name. The build dir defaults to
# build-release, and the script refuses a non-Release build — committed
# numbers from unoptimized binaries are worse than no numbers. Set
# BENCH_ALLOW_DEBUG=1 to run one anyway (for local smoke only).
#
# Two build-type fields appear in the JSON context:
#   "trichroma_build_type"  — the code under test; must say "release" in
#                             committed files (checked below).
#   "library_build_type"    — google-benchmark itself. The system package
#                             ships the library without NDEBUG, so this
#                             reads "debug" regardless of how this repo was
#                             compiled; it only affects harness overhead,
#                             not the timed regions.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

suite="engine"
case "${1:-}" in
  engine|substrate|batch|cache|obs|scaling|ladder)
    suite="$1"
    shift
    ;;
esac
build_dir="${1:-$repo_root/build-release}"
shift || true

case "$suite" in
  engine) target="bench_engine_perf" ;;
  substrate) target="bench_substrate" ;;
  batch) target="bench_batch" ;;
  cache) target="bench_cache" ;;
  obs) target="bench_obs" ;;
  scaling) target="bench_scaling" ;;
  ladder) target="bench_ladder" ;;
esac

bench="$build_dir/bench/$target"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found or not executable." >&2
  echo "Build it first:  cmake -B '$build_dir' -S '$repo_root' -DCMAKE_BUILD_TYPE=Release && cmake --build '$build_dir' -j --target $target" >&2
  exit 1
fi

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
case "$build_type" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    if [[ "${BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
      echo "error: '$build_dir' is a '${build_type:-unset}' build; benchmarks must run on Release." >&2
      echo "  cmake -B build-release -S '$repo_root' -DCMAKE_BUILD_TYPE=Release && cmake --build build-release -j" >&2
      echo "  (set BENCH_ALLOW_DEBUG=1 to override for a local smoke run — do not commit the output)" >&2
      exit 1
    fi
    echo "warning: benchmarking a '${build_type:-unset}' build (BENCH_ALLOW_DEBUG=1) — do not commit the output" >&2
    ;;
esac

out="$repo_root/BENCH_$suite.json"
"$bench" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  "$@"

if ! grep -q '"trichroma_build_type": "release"' "$out"; then
  if [[ "${BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
    echo "error: $out does not record trichroma_build_type=release — stale or debug binary?" >&2
    exit 1
  fi
  echo "warning: $out records a non-release trichroma build — do not commit it" >&2
fi
echo "wrote $out"
