#!/usr/bin/env bash
# Runs a benchmark suite and writes machine-readable results to
# BENCH_<suite>.json at the repo root (committed, so perf changes show up as
# a diff). Usage:
#
#   tools/run_bench.sh [suite] [build-dir] [extra google-benchmark flags...]
#
# Suites:
#   engine     bench_engine_perf  -> BENCH_engine.json     (default)
#   substrate  bench_substrate    -> BENCH_substrate.json
#
# e.g.  tools/run_bench.sh engine build --benchmark_filter=BM_DecisionMapSearch
#       tools/run_bench.sh substrate build-release --benchmark_filter=Compiled
#
# The first argument is treated as a build dir (legacy calling convention)
# when it is not a known suite name.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

suite="engine"
case "${1:-}" in
  engine|substrate)
    suite="$1"
    shift
    ;;
esac
build_dir="${1:-$repo_root/build}"
shift || true

case "$suite" in
  engine) target="bench_engine_perf" ;;
  substrate) target="bench_substrate" ;;
esac

bench="$build_dir/bench/$target"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found or not executable." >&2
  echo "Build it first:  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j --target $target" >&2
  exit 1
fi

out="$repo_root/BENCH_$suite.json"
"$bench" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  "$@"
echo "wrote $out"
