#!/usr/bin/env bash
# Runs the engine benchmark suite and writes machine-readable results to
# BENCH_engine.json at the repo root (committed, so engine-perf changes show
# up as a diff). Usage:
#
#   tools/run_bench.sh [build-dir] [extra google-benchmark flags...]
#
# e.g.  tools/run_bench.sh build --benchmark_filter=BM_DecisionMapSearch
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench="$build_dir/bench/bench_engine_perf"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found or not executable." >&2
  echo "Build it first:  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j --target bench_engine_perf" >&2
  exit 1
fi

out="$repo_root/BENCH_engine.json"
"$bench" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  "$@"
echo "wrote $out"
