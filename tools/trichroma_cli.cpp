// trichroma — command-line front end.
//
//   trichroma demo <name>           print a built-in task in the text format
//   trichroma check <file>          parse and validate a task description
//   trichroma decide <file>         run the full solvability pipeline
//   trichroma batch                 run the pipeline on the whole zoo
//   trichroma fingerprint <file>    canonical chromatic-isomorphism fingerprint
//   trichroma split <file>          canonicalize + split; print T' and report
//   trichroma dot <file> in|out     GraphViz rendering of a complex
//   trichroma run <file> [seed]     synthesize a protocol and execute it
//   trichroma cache stats|prune     inspect / evict the verdict store
//   trichroma trace-stats <file>    per-span aggregates of a Chrome trace
//   trichroma list                  list built-in demo tasks
//   trichroma version               print version / schema / build type
//
// The text format is documented in src/io/task_format.h; `demo` is the
// quickest way to get a template to edit.
//
// `decide --cache-dir DIR` (also honored by `batch`) consults and feeds a
// content-addressed verdict store keyed by the task's canonical fingerprint
// (io/store.h): a warm run replays the stored verdict instead of running
// the engines, and on a key miss the engines warm-start from a budget
// sibling's record or stored subdivision-ladder artifacts (reported as
// cache "artifacts"). `synth` never uses the store — the witness map is
// not part of a verdict record, so a hit would have nothing to synthesize
// from. `cache stats` and `cache prune --max-bytes N` (both take
// --cache-dir) inspect and shrink a store; pruning evicts whole task
// entries oldest-first, so a surviving verdict never loses its artifacts.
//
// `decide --trace out.json` records a Chrome trace-event timeline of the
// run (spans from the executor, map searches, pipeline lanes and topology
// substrate) — open it in chrome://tracing or https://ui.perfetto.dev.
// `batch --trace-dir DIR` does the same for a whole batch, writing
// DIR/trace.json plus the registry totals as DIR/metrics.json — the
// metrics file is republished rename-atomically every second during the
// run, so a killed batch still leaves a valid, near-current snapshot.
// `trace-stats` turns such a timeline back into numbers: per-span
// count/total/p50/p99 aggregates, the critical path of the slowest
// pipeline run, and per-worker executor utilization.
//
// `decide --metrics FILE` / `batch --metrics FILE` export the metrics
// registry (counters, gauges, histograms) in Prometheus text exposition
// format; `batch --heartbeat-file F [--heartbeat-interval S]` publishes a
// rename-atomic JSON liveness snapshot (progress, RSS, registry) every S
// seconds (default 5) — `tail`/`jq` it to monitor an hour-long batch.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/characterization.h"
#include "io/report.h"
#include "io/store.h"
#include "io/task_format.h"
#include <algorithm>

#include <memory>

#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_stats.h"
#include "protocols/pipeline.h"
#include "protocols/verify.h"
#include "solver/batch.h"
#include "solver/solvability.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"

using namespace trichroma;

namespace {

std::map<std::string, Task (*)()> demo_tasks() {
  return {
      {"consensus", [] { return zoo::consensus(3); }},
      {"consensus2", [] { return zoo::consensus_2(); }},
      {"set-agreement", [] { return zoo::set_agreement_32(); }},
      {"majority-consensus", [] { return zoo::majority_consensus(); }},
      {"hourglass", [] { return zoo::hourglass(); }},
      {"pinwheel", [] { return zoo::pinwheel(); }},
      {"identity", [] { return zoo::identity_task(); }},
      {"renaming", [] { return zoo::renaming(5); }},
      {"approx-agreement", [] { return zoo::approximate_agreement(2); }},
      {"subdivision", [] { return zoo::subdivision_task(1); }},
      {"fan", [] { return zoo::fan_task(6); }},
      {"fig3", [] { return zoo::fig3_running_example(); }},
  };
}

int usage() {
  std::fprintf(stderr,
               "usage: trichroma [options] <command> [args]\n"
               "  demo <name>        print a built-in task (see 'list')\n"
               "  list               list built-in tasks\n"
               "  check <file>       parse + validate\n"
               "  decide <file>      solvability verdict (Theorem 5.1)\n"
               "  batch              decide every zoo task concurrently\n"
               "  fingerprint <file> print the task's canonical fingerprint\n"
               "  split <file>       canonicalize + split; print T'\n"
               "  synth <file>       print the synthesized protocol's decision table\n"
               "  dot <file> in|out  GraphViz for the input/output complex\n"
               "  run <file> [seed]  synthesize and execute a protocol\n"
               "  cache stats        verdict-store size by kind (needs --cache-dir)\n"
               "  cache prune        evict oldest store entries down to --max-bytes\n"
               "  trace-stats <file> aggregate a Chrome trace: per-span count/total/\n"
               "                     p50/p99, critical path, worker utilization\n"
               "  version            print version, report schema and build type\n"
               "options:\n"
               "  --threads N        pipeline + search workers (default: hardware\n"
               "                     concurrency; 1 = sequential ladder)\n"
               "  --max-radius N     probe decision maps up to Ch^N (default: 2)\n"
               "  --node-cap N       search-node budget per probe (default: 20000000)\n"
               "  --jobs N           (batch) concurrent whole-task pipelines\n"
               "                     (default: 1; 0 = hardware concurrency)\n"
               "  --tasks a,b,...    (batch) restrict to these catalog tasks\n"
               "  --cache-dir DIR    (decide/batch/cache) content-addressed verdict\n"
               "                     store: replay stored verdicts for tasks already\n"
               "                     decided, or warm-start the engines from a budget\n"
               "                     sibling's subdivision artifacts (keyed by\n"
               "                     canonical fingerprint + budget; synth ignores\n"
               "                     it — witnesses are not stored)\n"
               "  --max-bytes N      (cache prune) target store size in bytes\n"
               "  --report FILE      (decide/synth) write the JSON pipeline report\n"
               "  --report-dir DIR   (batch) write one JSON report per task\n"
               "                     (timings redacted: files are byte-identical\n"
               "                     for every --jobs and --threads value)\n"
               "  --trace FILE       (decide/synth) write a Chrome trace-event\n"
               "                     timeline (chrome://tracing, Perfetto)\n"
               "  --trace-dir DIR    (batch) write DIR/trace.json + DIR/metrics.json\n"
               "                     (metrics republished atomically every second)\n"
               "  --metrics FILE     (decide/batch) write the metrics registry in\n"
               "                     Prometheus text exposition format\n"
               "  --heartbeat-file F (batch) publish a rename-atomic JSON liveness\n"
               "                     snapshot (progress, RSS, metrics) during the run\n"
               "  --heartbeat-interval S\n"
               "                     (batch) heartbeat period in seconds (default 5)\n");
  return 2;
}

struct CliOptions {
  SolvabilityOptions solve;
  int jobs = 1;                    // batch: concurrent task pipelines
  std::vector<std::string> tasks;  // batch: catalog subset
  std::string report_path;         // decide/synth
  std::string report_dir;          // batch
  std::string trace_path;          // decide/synth
  std::string trace_dir;           // batch
  std::string metrics_path;        // decide/batch: Prometheus export
  std::string heartbeat_file;      // batch
  double heartbeat_interval_s = 5.0;
  long long max_bytes = -1;        // cache prune: -1 = not given
};

/// RAII trace session around one CLI command: collection starts at
/// construction and the timeline is written when the command scope closes
/// (after all instrumented work quiesced). Inactive when `path` is empty.
class TraceSession {
 public:
  explicit TraceSession(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) obs::trace_start();
  }
  ~TraceSession() {
    if (path_.empty()) return;
    obs::trace_stop();
    try {
      obs::trace_write(path_);
      std::printf("trace:   %s", path_.c_str());
      if (const std::uint64_t dropped = obs::trace_dropped()) {
        std::printf("  (%llu events dropped; buffers were full)",
                    static_cast<unsigned long long>(dropped));
      }
      std::printf("\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
};

Task load(const char* path) { return io::parse_task(io::read_file(path)); }

void maybe_write_report(const SolvabilityResult& r, const CliOptions& cli) {
  if (cli.report_path.empty() || r.report == nullptr) return;
  io::write_text_file(cli.report_path, io::to_json(*r.report));
  std::printf("report:  %s\n", cli.report_path.c_str());
}

// Prometheus export of the global registry (counters, gauges, histograms),
// written rename-atomically so a scraper never reads a torn file.
void maybe_write_metrics(const CliOptions& cli) {
  if (cli.metrics_path.empty()) return;
  obs::atomic_write_file(cli.metrics_path,
                         obs::MetricsRegistry::global().to_prometheus());
  std::printf("metrics: %s\n", cli.metrics_path.c_str());
}

int cmd_check(const Task& task) {
  const auto errors = task.validate();
  std::printf("%s", task.summary().c_str());
  if (errors.empty()) {
    std::printf("OK: valid carrier map\n");
    return 0;
  }
  for (const auto& e : errors) std::printf("ERROR: %s\n", e.c_str());
  return 1;
}

int cmd_version() {
#if defined(TRICHROMA_TSAN_BUILD)
  const char* build_type = "TSan";
#elif !defined(NDEBUG)
  const char* build_type = "assert";
#else
  const char* build_type = "Release";
#endif
#ifndef TRICHROMA_VERSION
#define TRICHROMA_VERSION "unknown"
#endif
  std::printf("trichroma %s\n", TRICHROMA_VERSION);
  std::printf("report schema: %s\n", io::report_schema());
  std::printf("build type: %s\n", build_type);
  return 0;
}

int cmd_decide(const Task& task, const CliOptions& cli) {
  TraceSession trace(cli.trace_path);
  const SolvabilityResult r = decide_solvability(task, cli.solve);
  std::printf("%s", task.summary().c_str());
  std::printf("verdict: %s\n", to_string(r.verdict));
  std::printf("reason:  %s\n", r.reason.c_str());
  if (!cli.solve.cache_dir.empty() && r.report != nullptr) {
    std::printf("cache:   %s\n", r.report->cache.c_str());
  }
  maybe_write_report(r, cli);
  maybe_write_metrics(cli);
  if (r.characterization != nullptr) {
    // The characterization lane runs on a clone of the task, so the report
    // must be rendered against its own pool (it may not have run at all if
    // the chromatic probe concluded first and cancelled it).
    std::printf("\n%s",
                r.characterization->report(*r.characterization->canonical.pool)
                    .c_str());
  }
  return r.verdict == Verdict::Unknown ? 1 : 0;
}

int cmd_batch(const CliOptions& cli) {
  if (!cli.report_dir.empty()) {
    std::filesystem::create_directories(cli.report_dir);
  }
  if (!cli.trace_dir.empty()) {
    std::filesystem::create_directories(cli.trace_dir);
  }
  TraceSession trace(cli.trace_dir.empty() ? std::string()
                                           : cli.trace_dir + "/trace.json");
  // The trace-dir metrics snapshot is republished rename-atomically every
  // second during the run (same writer as the heartbeat), not only at the
  // end — a killed batch leaves a valid, near-current metrics.json.
  std::unique_ptr<obs::PeriodicSnapshotWriter> metrics_flush;
  if (!cli.trace_dir.empty()) {
    metrics_flush = std::make_unique<obs::PeriodicSnapshotWriter>(
        cli.trace_dir + "/metrics.json", 1.0,
        [] { return obs::MetricsRegistry::global().to_json(); });
  }
  BatchOptions batch;
  batch.solve = cli.solve;
  batch.jobs = cli.jobs;
  batch.only = cli.tasks;
  batch.heartbeat_file = cli.heartbeat_file;
  batch.heartbeat_interval_s = cli.heartbeat_interval_s;
  const BatchResult result = run_batch(batch);
  if (metrics_flush != nullptr) {
    metrics_flush->stop();  // final flush with the end-of-run totals
    metrics_flush.reset();
    std::printf("metrics: %s/metrics.json\n", cli.trace_dir.c_str());
  }
  maybe_write_metrics(cli);

  std::printf("batch: %zu tasks, %d jobs, %.1f ms\n", result.tasks.size(),
              resolve_batch_jobs(cli.jobs), result.wall_ms);
  if (!cli.solve.cache_dir.empty()) {
    // The "N hit(s), M miss(es)" prefix is a substring contract (CI greps
    // it); the warm-start count is strictly appended.
    std::printf("cache: %d hit(s), %d miss(es), %d warm-start(s)\n",
                result.cache_hits, result.cache_misses,
                result.cache_artifacts);
  }
  std::printf("\n");
  std::printf("%-24s %-12s %7s %6s %9s  %s\n", "task", "verdict", "radius",
              "viaT'", "ms", "reason");
  for (const BatchTaskResult& t : result.tasks) {
    const PipelineReport& r = t.report;
    std::printf("%-24s %-12s %7d %6s %9.1f  %.60s\n", t.name.c_str(),
                to_string(r.verdict), r.radius,
                r.via_characterization ? "yes" : "no", r.total_wall_ms,
                r.reason.c_str());
    if (!cli.report_dir.empty()) {
      // Redacted timings: the one schedule-dependent quantity is zeroed, so
      // these files are byte-identical for every --jobs/--threads value.
      io::ReportJsonOptions json_options;
      json_options.redact_timings = true;
      io::write_text_file(cli.report_dir + "/" + t.name + ".json",
                          io::to_json(r, json_options));
    }
  }
  if (!cli.report_dir.empty()) {
    std::printf("\nreports written to %s/\n", cli.report_dir.c_str());
  }
  return result.unknown == 0 ? 0 : 1;
}

int cmd_cache(const char* action, const CliOptions& cli) {
  if (cli.solve.cache_dir.empty()) {
    std::fprintf(stderr, "error: 'cache %s' needs --cache-dir\n", action);
    return 2;
  }
  const io::VerdictStore store(cli.solve.cache_dir);
  if (std::strcmp(action, "stats") == 0) {
    const io::VerdictStore::Stats s = store.stats();
    std::printf("store:           %s\n", cli.solve.cache_dir.c_str());
    std::printf("entries:         %zu\n", s.entries);
    std::printf("verdict records: %zu (%llu bytes)\n", s.verdict_records,
                static_cast<unsigned long long>(s.verdict_bytes));
    std::printf("artifact files:  %zu (%llu bytes)\n", s.artifact_files,
                static_cast<unsigned long long>(s.artifact_bytes));
    std::printf("other files:     %zu (%llu bytes)\n", s.other_files,
                static_cast<unsigned long long>(s.other_bytes));
    std::printf("total bytes:     %llu\n",
                static_cast<unsigned long long>(s.total_bytes()));
    return 0;
  }
  if (std::strcmp(action, "prune") == 0) {
    if (cli.max_bytes < 0) {
      std::fprintf(stderr, "error: 'cache prune' needs --max-bytes\n");
      return 2;
    }
    const io::VerdictStore::PruneResult r =
        store.prune(static_cast<std::uint64_t>(cli.max_bytes));
    std::printf("evicted:   %zu entries (%llu bytes)\n", r.evicted_entries,
                static_cast<unsigned long long>(r.evicted_bytes));
    std::printf("remaining: %llu bytes\n",
                static_cast<unsigned long long>(r.remaining_bytes));
    return 0;
  }
  std::fprintf(stderr, "unknown cache action '%s' (want stats|prune)\n",
               action);
  return 2;
}

int cmd_trace_stats(const char* path) {
  const obs::TraceStats stats = obs::analyze_trace(io::read_file(path));
  std::printf("%s", obs::format_trace_stats(stats).c_str());
  return 0;
}

int cmd_fingerprint(const Task& task) {
  const FingerprintResult r = fingerprint_task(task);
  std::printf("%s", task.summary().c_str());
  std::printf("fingerprint: %s\n", r.fingerprint.hex().c_str());
  std::printf("domain:      %s\n", kFingerprintDomain);
  std::printf("vertices:    %zu\n", r.stats.vertices);
  std::printf("refinement rounds: %zu\n", r.stats.refinement_rounds);
  std::printf("backtrack nodes:   %zu\n", r.stats.backtrack_nodes);
  std::printf("leaves:            %zu\n", r.stats.leaves);
  std::printf("automorphism gens: %zu\n", r.stats.automorphism_generators);
  std::printf("orbit prunes:      %zu\n", r.stats.orbit_prunes);
  return 0;
}

int cmd_split(const Task& task) {
  const CharacterizationResult c = characterize(task);
  std::printf("%s\n", c.report(*task.pool).c_str());
  std::printf("%s", io::serialize_task(c.link_connected).c_str());
  return 0;
}

int cmd_dot(const Task& task, const char* which) {
  const bool input = std::strcmp(which, "in") == 0;
  std::printf("%s", io::to_dot(*task.pool, input ? task.input : task.output,
                               task.name + (input ? "-input" : "-output"))
                        .c_str());
  return 0;
}

int cmd_synth(const Task& task, const CliOptions& cli) {
  // Direct chromatic synthesis: find a decision map and print it as the
  // wait-free protocol it encodes. The verdict store is bypassed: a store
  // hit replays the verdict without the witness map, which would turn a
  // solvable task into "nothing to synthesize".
  TraceSession trace(cli.trace_path);
  SolvabilityOptions solve = cli.solve;
  solve.cache_dir.clear();
  const SolvabilityResult r = decide_solvability(task, solve);
  maybe_write_report(r, cli);
  if (r.verdict != Verdict::Solvable || !r.has_chromatic_witness) {
    std::printf("verdict: %s — nothing to synthesize\nreason: %s\n",
                to_string(r.verdict), r.reason.c_str());
    return 1;
  }
  std::printf("protocol: run %d round(s) of iterated immediate snapshot,\n"
              "then decide by the table below (view -> output).\n\n",
              r.radius);
  VertexPool& pool = *task.pool;
  // Order rows by view vertex id for stable output.
  std::vector<std::pair<VertexId, VertexId>> rows(r.witness.entries().begin(),
                                                  r.witness.entries().end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return raw(a.first) < raw(b.first);
  });
  for (const auto& [view, decision] : rows) {
    std::printf("  %-48s -> %s\n", pool.name(view).c_str(),
                pool.name(decision).c_str());
  }
  const auto check = protocols::verify_decision_map(task, r.witness, r.radius);
  std::printf("\nmodel-checked against %zu IIS executions: %s\n",
              check.executions, check.ok ? "all valid" : check.first_failure.c_str());
  return check.ok ? 0 : 1;
}

int cmd_run(const Task& task, std::uint64_t seed) {
  const auto solver = protocols::build_end_to_end(task, 2);
  if (!solver.has_value()) {
    std::printf("no protocol found at radius <= 2 (task may be unsolvable; "
                "try 'decide')\n");
    return 1;
  }
  std::printf("protocol: %d IIS round(s) + Figure-7 chromatic agreement\n",
              solver->algorithm.rounds);
  const int top = task.input.dimension();
  int runs = 0, valid = 0;
  for (const Simplex& facet : task.input.simplices(top)) {
    std::vector<std::pair<int, VertexId>> inputs;
    for (VertexId v : facet) {
      inputs.emplace_back(task.pool->color(v), v);
    }
    const auto run = protocols::run_end_to_end(*solver, task, inputs, seed);
    ++runs;
    valid += run.valid ? 1 : 0;
    std::printf("facet %s: %s (%zu ops)\n",
                facet.to_string(*task.pool).c_str(),
                run.valid ? "valid" : "INVALID", run.total_operations);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (run.decisions.size() > i && run.decisions[i].has_value()) {
        std::printf("  P%d -> %s\n", inputs[i].first,
                    task.pool->name(*run.decisions[i]).c_str());
      }
    }
  }
  std::printf("%d/%d facets executed validly\n", valid, runs);
  return valid == runs ? 0 : 1;
}

bool parse_long(const char* text, long min, long max, long* out) {
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || n < min || n > max) return false;
  *out = n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options first; everything else is positional.
  CliOptions cli;
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) return usage();
      long n = 0;
      if (!parse_long(argv[++i], 0, 4096, &n)) {
        std::fprintf(stderr, "error: --threads expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return usage();
      }
      cli.solve.threads = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--max-radius") == 0) {
      if (i + 1 >= argc) return usage();
      long n = 0;
      if (!parse_long(argv[++i], 0, 32, &n)) {
        std::fprintf(stderr, "error: --max-radius expects an integer in 0..32, got '%s'\n",
                     argv[i]);
        return usage();
      }
      cli.solve.max_radius = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--node-cap") == 0) {
      if (i + 1 >= argc) return usage();
      long n = 0;
      if (!parse_long(argv[++i], 1, 2'000'000'000'000L, &n)) {
        std::fprintf(stderr, "error: --node-cap expects a positive integer, got '%s'\n",
                     argv[i]);
        return usage();
      }
      cli.solve.node_cap = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) return usage();
      long n = 0;
      if (!parse_long(argv[++i], 0, 4096, &n)) {
        std::fprintf(stderr,
                     "error: --jobs expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return usage();
      }
      cli.jobs = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--tasks") == 0) {
      if (i + 1 >= argc) return usage();
      const char* list = argv[++i];
      std::string name;
      for (const char* p = list;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!name.empty()) cli.tasks.push_back(name);
          name.clear();
          if (*p == '\0') break;
        } else {
          name += *p;
        }
      }
      if (cli.tasks.empty()) {
        std::fprintf(stderr, "error: --tasks expects a comma-separated list\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      if (i + 1 >= argc) return usage();
      cli.solve.cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--max-bytes") == 0) {
      if (i + 1 >= argc) return usage();
      long n = 0;
      if (!parse_long(argv[++i], 0, 2'000'000'000'000L, &n)) {
        std::fprintf(stderr,
                     "error: --max-bytes expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return usage();
      }
      cli.max_bytes = n;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      if (i + 1 >= argc) return usage();
      cli.report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report-dir") == 0) {
      if (i + 1 >= argc) return usage();
      cli.report_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) return usage();
      cli.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      if (i + 1 >= argc) return usage();
      cli.trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 >= argc) return usage();
      cli.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat-file") == 0) {
      if (i + 1 >= argc) return usage();
      cli.heartbeat_file = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat-interval") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const double s = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(s > 0.0) || s > 86400.0) {
        std::fprintf(stderr,
                     "error: --heartbeat-interval expects seconds in "
                     "(0, 86400], got '%s'\n",
                     argv[i]);
        return usage();
      }
      cli.heartbeat_interval_s = s;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "version") {
      return cmd_version();
    }
    if (command == "list") {
      for (const auto& [name, make] : demo_tasks()) {
        (void)make;
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (command == "batch") {
      if (argc != 2) return usage();
      return cmd_batch(cli);
    }
    if (command == "demo") {
      if (argc != 3) return usage();
      const auto demos = demo_tasks();
      auto it = demos.find(argv[2]);
      if (it == demos.end()) {
        std::fprintf(stderr, "unknown demo '%s'; see 'trichroma list'\n", argv[2]);
        return 2;
      }
      std::printf("%s", io::serialize_task(it->second()).c_str());
      return 0;
    }
    if (command == "cache") {
      if (argc != 3) return usage();
      return cmd_cache(argv[2], cli);
    }
    if (command == "trace-stats") {
      if (argc != 3) return usage();
      return cmd_trace_stats(argv[2]);
    }
    if (argc < 3) return usage();
    const Task task = load(argv[2]);
    if (command == "check") return cmd_check(task);
    if (command == "synth") return cmd_synth(task, cli);
    if (command == "decide") return cmd_decide(task, cli);
    if (command == "fingerprint") return cmd_fingerprint(task);
    if (command == "split") return cmd_split(task);
    if (command == "dot") {
      if (argc != 4) return usage();
      return cmd_dot(task, argv[3]);
    }
    if (command == "run") {
      const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
      return cmd_run(task, seed);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
