// trichroma — command-line front end.
//
//   trichroma demo <name>           print a built-in task in the text format
//   trichroma check <file>          parse and validate a task description
//   trichroma decide <file>         run the full solvability pipeline
//   trichroma split <file>          canonicalize + split; print T' and report
//   trichroma dot <file> in|out     GraphViz rendering of a complex
//   trichroma run <file> [seed]     synthesize a protocol and execute it
//   trichroma list                  list built-in demo tasks
//
// The text format is documented in src/io/task_format.h; `demo` is the
// quickest way to get a template to edit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "core/characterization.h"
#include "io/task_format.h"
#include <algorithm>

#include "protocols/pipeline.h"
#include "protocols/verify.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

using namespace trichroma;

namespace {

std::map<std::string, Task (*)()> demo_tasks() {
  return {
      {"consensus", [] { return zoo::consensus(3); }},
      {"consensus2", [] { return zoo::consensus_2(); }},
      {"set-agreement", [] { return zoo::set_agreement_32(); }},
      {"majority-consensus", [] { return zoo::majority_consensus(); }},
      {"hourglass", [] { return zoo::hourglass(); }},
      {"pinwheel", [] { return zoo::pinwheel(); }},
      {"identity", [] { return zoo::identity_task(); }},
      {"renaming", [] { return zoo::renaming(5); }},
      {"approx-agreement", [] { return zoo::approximate_agreement(2); }},
      {"subdivision", [] { return zoo::subdivision_task(1); }},
      {"fan", [] { return zoo::fan_task(6); }},
      {"fig3", [] { return zoo::fig3_running_example(); }},
  };
}

int usage() {
  std::fprintf(stderr,
               "usage: trichroma [--threads N] <command> [args]\n"
               "  demo <name>        print a built-in task (see 'list')\n"
               "  list               list built-in tasks\n"
               "  check <file>       parse + validate\n"
               "  decide <file>      solvability verdict (Theorem 5.1)\n"
               "  split <file>       canonicalize + split; print T'\n"
               "  synth <file>       print the synthesized protocol's decision table\n"
               "  dot <file> in|out  GraphViz for the input/output complex\n"
               "  run <file> [seed]  synthesize and execute a protocol\n"
               "options:\n"
               "  --threads N        decision-map search workers (default:\n"
               "                     hardware concurrency; 1 = sequential)\n");
  return 2;
}

Task load(const char* path) { return io::parse_task(io::read_file(path)); }

int cmd_check(const Task& task) {
  const auto errors = task.validate();
  std::printf("%s", task.summary().c_str());
  if (errors.empty()) {
    std::printf("OK: valid carrier map\n");
    return 0;
  }
  for (const auto& e : errors) std::printf("ERROR: %s\n", e.c_str());
  return 1;
}

int cmd_decide(const Task& task, int threads) {
  SolvabilityOptions options;
  options.threads = threads;
  const SolvabilityResult r = decide_solvability(task, options);
  std::printf("%s", task.summary().c_str());
  std::printf("verdict: %s\n", to_string(r.verdict));
  std::printf("reason:  %s\n", r.reason.c_str());
  if (r.characterization != nullptr) {
    std::printf("\n%s", r.characterization->report(*task.pool).c_str());
  }
  return r.verdict == Verdict::Unknown ? 1 : 0;
}

int cmd_split(const Task& task) {
  const CharacterizationResult c = characterize(task);
  std::printf("%s\n", c.report(*task.pool).c_str());
  std::printf("%s", io::serialize_task(c.link_connected).c_str());
  return 0;
}

int cmd_dot(const Task& task, const char* which) {
  const bool input = std::strcmp(which, "in") == 0;
  std::printf("%s", io::to_dot(*task.pool, input ? task.input : task.output,
                               task.name + (input ? "-input" : "-output"))
                        .c_str());
  return 0;
}

int cmd_synth(const Task& task, int threads) {
  // Direct chromatic synthesis: find a decision map and print it as the
  // wait-free protocol it encodes.
  SolvabilityOptions options;
  options.threads = threads;
  const SolvabilityResult r = decide_solvability(task, options);
  if (r.verdict != Verdict::Solvable || !r.has_chromatic_witness) {
    std::printf("verdict: %s — nothing to synthesize\nreason: %s\n",
                to_string(r.verdict), r.reason.c_str());
    return 1;
  }
  std::printf("protocol: run %d round(s) of iterated immediate snapshot,\n"
              "then decide by the table below (view -> output).\n\n",
              r.radius);
  VertexPool& pool = *task.pool;
  // Order rows by view vertex id for stable output.
  std::vector<std::pair<VertexId, VertexId>> rows(r.witness.entries().begin(),
                                                  r.witness.entries().end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return raw(a.first) < raw(b.first);
  });
  for (const auto& [view, decision] : rows) {
    std::printf("  %-48s -> %s\n", pool.name(view).c_str(),
                pool.name(decision).c_str());
  }
  const auto check = protocols::verify_decision_map(task, r.witness, r.radius);
  std::printf("\nmodel-checked against %zu IIS executions: %s\n",
              check.executions, check.ok ? "all valid" : check.first_failure.c_str());
  return check.ok ? 0 : 1;
}

int cmd_run(const Task& task, std::uint64_t seed) {
  const auto solver = protocols::build_end_to_end(task, 2);
  if (!solver.has_value()) {
    std::printf("no protocol found at radius <= 2 (task may be unsolvable; "
                "try 'decide')\n");
    return 1;
  }
  std::printf("protocol: %d IIS round(s) + Figure-7 chromatic agreement\n",
              solver->algorithm.rounds);
  const int top = task.input.dimension();
  int runs = 0, valid = 0;
  for (const Simplex& facet : task.input.simplices(top)) {
    std::vector<std::pair<int, VertexId>> inputs;
    for (VertexId v : facet) {
      inputs.emplace_back(task.pool->color(v), v);
    }
    const auto run = protocols::run_end_to_end(*solver, task, inputs, seed);
    ++runs;
    valid += run.valid ? 1 : 0;
    std::printf("facet %s: %s (%zu ops)\n",
                facet.to_string(*task.pool).c_str(),
                run.valid ? "valid" : "INVALID", run.total_operations);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (run.decisions.size() > i && run.decisions[i].has_value()) {
        std::printf("  P%d -> %s\n", inputs[i].first,
                    task.pool->name(*run.decisions[i]).c_str());
      }
    }
  }
  std::printf("%d/%d facets executed validly\n", valid, runs);
  return valid == runs ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options first; everything else is positional.
  int threads = 0;  // 0 = hardware concurrency
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0 || n > 4096) {
        std::fprintf(stderr, "error: --threads expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return usage();
      }
      threads = static_cast<int>(n);
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "list") {
      for (const auto& [name, make] : demo_tasks()) {
        (void)make;
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (command == "demo") {
      if (argc != 3) return usage();
      const auto demos = demo_tasks();
      auto it = demos.find(argv[2]);
      if (it == demos.end()) {
        std::fprintf(stderr, "unknown demo '%s'; see 'trichroma list'\n", argv[2]);
        return 2;
      }
      std::printf("%s", io::serialize_task(it->second()).c_str());
      return 0;
    }
    if (argc < 3) return usage();
    const Task task = load(argv[2]);
    if (command == "check") return cmd_check(task);
    if (command == "synth") return cmd_synth(task, threads);
    if (command == "decide") return cmd_decide(task, threads);
    if (command == "split") return cmd_split(task);
    if (command == "dot") {
      if (argc != 4) return usage();
      return cmd_dot(task, argv[3]);
    }
    if (command == "run") {
      const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
      return cmd_run(task, seed);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
